//! Spool telemetry: worker heartbeats and the `campaign_status` dashboard
//! model.
//!
//! Campaign workers (sweep, frontier, fuzz) publish a small, versioned
//! `stats-NNNN.json` *heartbeat* next to each shard's `.progress` file:
//! case throughput, retries consumed, fuzz corpus growth, and a wallclock
//! last-update stamp. Heartbeats are **advisory** artifacts for humans and
//! dashboards — they are written with the same temp-file-plus-rename
//! discipline as reports, but they are *never* read by the deterministic
//! merge, so the wallclock stamps inside them cannot perturb campaign
//! results (see the non-perturbation contract in `MODEL.md`).
//!
//! [`campaign_status`] folds a spool directory — any of the three kinds —
//! into a [`CampaignStatusReport`]: per-shard health (done / running /
//! stalled / pending / unknown), aggregate progress, an ETA, and a
//! stalled-worker count. Every read path is tolerant: a torn, truncated,
//! stale or byte-garbage heartbeat degrades that shard to
//! [`ShardHealth::Unknown`]; it never panics and never fails the fold.

use crate::campaign::{
    config_path, load_config, manifest_path, shard_progress_path, shard_report_path,
    write_atomically, Json, JsonParser, ShardManifest,
};
use crate::frontier::FrontierConfig;
use crate::fuzz::campaign::{fuzz_manifest_path, fuzz_shard_report_path, FuzzManifest};
use std::fs;
use std::path::{Path, PathBuf};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Version tag of the on-disk heartbeat format.
pub const HEARTBEAT_VERSION: u32 = 1;

/// Path of a shard's heartbeat file inside a spool directory.
pub fn stats_path(spool: &Path, shard: usize) -> PathBuf {
    spool.join(format!("stats-{shard:04}.json"))
}

/// Milliseconds since the Unix epoch, for heartbeat stamps. Wallclock is
/// allowed here: heartbeats sit at the process edge and are excluded from
/// every deterministic artifact.
pub fn now_unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// One shard's heartbeat, as persisted in `stats-NNNN.json`.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardHeartbeat {
    /// Heartbeat format version ([`HEARTBEAT_VERSION`]).
    pub version: u32,
    /// Spool kind the writer was running: `"sweep"` (also used by frontier
    /// campaigns, which shard through the sweep machinery) or `"fuzz"`.
    pub kind: String,
    /// Shard index.
    pub shard: u64,
    /// Work units finished in the current pass: cases for sweep shards,
    /// streams of the current generation for fuzz shards.
    pub done: u64,
    /// Total work units in the current pass.
    pub total: u64,
    /// Units per second since the pass started (same unit as `done`).
    pub cases_per_sec: f64,
    /// Worker attempts consumed before this run, per the manifest.
    pub retries: u64,
    /// Advisory writes (progress files, earlier heartbeats) that failed so
    /// far in this pass — a nonzero count flags a sick spool disk.
    pub progress_write_failures: u64,
    /// Fuzz only: the generation being run.
    pub generation: Option<u64>,
    /// Fuzz only: iterations executed so far in this pass.
    pub iterations: Option<u64>,
    /// Fuzz only: corpus entries (new coverage signatures) published so
    /// far in this pass.
    pub corpus_entries: Option<u64>,
    /// Wallclock stamp of this heartbeat, in milliseconds since the epoch.
    pub updated_unix_ms: u64,
}

fn opt_json(v: Option<u64>) -> String {
    match v {
        Some(n) => n.to_string(),
        None => "null".to_string(),
    }
}

fn opt_u64(json: &Json, key: &str) -> Result<Option<u64>, String> {
    match json.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("field {key:?} is not a number")),
    }
}

fn req_u64(json: &Json, key: &str) -> Result<u64, String> {
    json.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

impl ShardHeartbeat {
    /// Serializes the heartbeat as its on-disk JSON.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"version\":{},\"kind\":{:?},\"shard\":{},\"done\":{},\"total\":{},",
                "\"cases_per_sec\":{:.3},\"retries\":{},\"progress_write_failures\":{},",
                "\"generation\":{},\"iterations\":{},\"corpus_entries\":{},",
                "\"updated_unix_ms\":{}}}\n"
            ),
            self.version,
            self.kind,
            self.shard,
            self.done,
            self.total,
            self.cases_per_sec,
            self.retries,
            self.progress_write_failures,
            opt_json(self.generation),
            opt_json(self.iterations),
            opt_json(self.corpus_entries),
            self.updated_unix_ms,
        )
    }

    /// Parses an on-disk heartbeat.
    ///
    /// # Errors
    ///
    /// Returns a message naming what is malformed; callers degrade the
    /// shard to [`ShardHealth::Unknown`] rather than failing.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let json = JsonParser::new(text).value()?;
        let version = u32::try_from(req_u64(&json, "version")?)
            .map_err(|_| "oversized version".to_string())?;
        if version != HEARTBEAT_VERSION {
            return Err(format!(
                "unsupported heartbeat version {version} (expected {HEARTBEAT_VERSION})"
            ));
        }
        let kind = json
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("missing string field \"kind\"")?
            .to_string();
        let cases_per_sec = json
            .get("cases_per_sec")
            .and_then(Json::as_f64)
            .ok_or("missing numeric field \"cases_per_sec\"")?;
        Ok(ShardHeartbeat {
            version,
            kind,
            shard: req_u64(&json, "shard")?,
            done: req_u64(&json, "done")?,
            total: req_u64(&json, "total")?,
            cases_per_sec,
            retries: req_u64(&json, "retries")?,
            progress_write_failures: req_u64(&json, "progress_write_failures")?,
            generation: opt_u64(&json, "generation")?,
            iterations: opt_u64(&json, "iterations")?,
            corpus_entries: opt_u64(&json, "corpus_entries")?,
            updated_unix_ms: req_u64(&json, "updated_unix_ms")?,
        })
    }

    /// Loads a shard's heartbeat from a spool directory.
    ///
    /// Returns `Ok(None)` when no heartbeat has been published yet.
    ///
    /// # Errors
    ///
    /// Returns a message when a file exists but is torn or malformed.
    pub fn load(spool: &Path, shard: usize) -> Result<Option<Self>, String> {
        let path = stats_path(spool, shard);
        match fs::read_to_string(&path) {
            Ok(text) => Self::from_json(&text).map(Some),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(format!("cannot read {}: {e}", path.display())),
        }
    }
}

/// Publishes heartbeats and progress counters for one worker pass over a
/// shard, absorbing advisory-write failures: the first failure is warned
/// about on stderr, every failure is counted, and the count rides along in
/// subsequent heartbeats.
pub struct HeartbeatWriter {
    spool: PathBuf,
    shard: usize,
    kind: &'static str,
    retries: u64,
    started: Instant,
    write_failures: u64,
    warned: bool,
    generation: Option<u64>,
    iterations: Option<u64>,
    corpus_entries: Option<u64>,
}

impl HeartbeatWriter {
    /// Starts a pass over `shard` of the spool; `attempts` is the
    /// manifest's attempt counter at launch.
    pub fn new(spool: &Path, shard: usize, kind: &'static str, attempts: u32) -> Self {
        HeartbeatWriter {
            spool: spool.to_path_buf(),
            shard,
            kind,
            retries: u64::from(attempts),
            started: Instant::now(),
            write_failures: 0,
            warned: false,
            generation: None,
            iterations: None,
            corpus_entries: None,
        }
    }

    /// Sets the fuzz-only heartbeat fields for subsequent publishes.
    pub fn set_fuzz_progress(&mut self, generation: u64, iterations: u64, corpus_entries: u64) {
        self.generation = Some(generation);
        self.iterations = Some(iterations);
        self.corpus_entries = Some(corpus_entries);
    }

    /// Advisory writes that have failed so far in this pass.
    pub fn write_failures(&self) -> u64 {
        self.write_failures
    }

    fn note_failure(&mut self, what: &str, err: &dyn std::fmt::Display) {
        self.write_failures += 1;
        if !self.warned {
            self.warned = true;
            eprintln!(
                "warning: shard {}: cannot write {what}: {err} \
                 (progress reporting degraded; further failures counted, not repeated)",
                self.shard
            );
        }
    }

    /// Writes the shard's `done total` progress counter.
    pub fn write_progress(&mut self, done: usize, total: usize) {
        let path = shard_progress_path(&self.spool, self.shard);
        if let Err(e) = fs::write(&path, format!("{done} {total}\n")) {
            self.note_failure("progress file", &e);
        }
    }

    /// Publishes a heartbeat for the current pass state.
    pub fn publish(&mut self, done: u64, total: u64) {
        let elapsed = self.started.elapsed().as_secs_f64();
        let heartbeat = ShardHeartbeat {
            version: HEARTBEAT_VERSION,
            kind: self.kind.to_string(),
            shard: self.shard as u64,
            done,
            total,
            cases_per_sec: if elapsed > 0.0 {
                done as f64 / elapsed
            } else {
                0.0
            },
            retries: self.retries,
            progress_write_failures: self.write_failures,
            generation: self.generation,
            iterations: self.iterations,
            corpus_entries: self.corpus_entries,
            updated_unix_ms: now_unix_ms(),
        };
        let path = stats_path(&self.spool, self.shard);
        if let Err(e) = write_atomically(&path, &heartbeat.to_json()) {
            self.note_failure("heartbeat", &e);
        }
    }
}

// --------------------------------------------------------------------------
// The dashboard fold
// --------------------------------------------------------------------------

/// The kind of campaign a spool directory holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpoolKind {
    /// A parameter-sweep campaign (`manifest.txt`).
    Sweep,
    /// A sweep campaign whose config is a valid frontier grid.
    Frontier,
    /// A fuzz campaign (`fuzz-manifest.txt`).
    Fuzz,
}

impl SpoolKind {
    /// Lower-case display name.
    pub fn name(self) -> &'static str {
        match self {
            SpoolKind::Sweep => "sweep",
            SpoolKind::Frontier => "frontier",
            SpoolKind::Fuzz => "fuzz",
        }
    }
}

/// Detects what kind of campaign lives in `spool`, or `None` when the
/// directory holds neither manifest.
pub fn detect_spool_kind(spool: &Path) -> Option<SpoolKind> {
    if fuzz_manifest_path(spool).exists() {
        return Some(SpoolKind::Fuzz);
    }
    if manifest_path(spool).exists() && config_path(spool).exists() {
        let is_frontier = load_config(spool)
            .ok()
            .is_some_and(|config| FrontierConfig::from_sweep_config(&config).is_ok());
        return Some(if is_frontier {
            SpoolKind::Frontier
        } else {
            SpoolKind::Sweep
        });
    }
    None
}

/// Health of one shard, as judged from the spool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardHealth {
    /// The shard's report (last generation's, for fuzz) is published.
    Done,
    /// A fresh heartbeat exists.
    Running,
    /// A heartbeat exists but is older than the stall threshold.
    Stalled,
    /// No heartbeat yet.
    Pending,
    /// The heartbeat exists but is torn, truncated or malformed.
    Unknown,
}

impl ShardHealth {
    /// Lower-case display name.
    pub fn name(self) -> &'static str {
        match self {
            ShardHealth::Done => "done",
            ShardHealth::Running => "running",
            ShardHealth::Stalled => "stalled",
            ShardHealth::Pending => "pending",
            ShardHealth::Unknown => "unknown",
        }
    }
}

/// One dashboard row: a shard's judged state.
#[derive(Clone, Debug)]
pub struct ShardStatusView {
    /// Shard index.
    pub shard: usize,
    /// Judged health.
    pub health: ShardHealth,
    /// Work units finished in the shard's current pass (heartbeat scale).
    pub done: u64,
    /// Total work units in the current pass.
    pub total: u64,
    /// Units per second reported by the newest heartbeat.
    pub cases_per_sec: f64,
    /// Heartbeat age in milliseconds, when one parsed.
    pub age_ms: Option<u64>,
    /// Worker attempts consumed per the heartbeat.
    pub retries: u64,
    /// Advisory-write failures reported by the worker.
    pub progress_write_failures: u64,
    /// Kind-specific annotation (fuzz generation, torn-file reason, ...).
    pub note: String,
}

/// The folded status of a whole campaign spool.
#[derive(Clone, Debug)]
pub struct CampaignStatusReport {
    /// What kind of campaign the spool holds.
    pub kind: SpoolKind,
    /// Per-shard rows, in shard order.
    pub shards: Vec<ShardStatusView>,
    /// Finished work units, summed in the campaign's own unit (cases for
    /// sweep/frontier, `(shard, generation)` stream units for fuzz).
    pub done_units: u64,
    /// Total work units.
    pub total_units: u64,
    /// Estimated seconds to completion, from the running shards' rates.
    pub eta_secs: Option<u64>,
    /// Number of stalled shards.
    pub stalled: usize,
    /// True when every shard is done.
    pub complete: bool,
}

fn heartbeat_age_ms(heartbeat: &ShardHeartbeat, now_unix_ms: u64) -> u64 {
    now_unix_ms.saturating_sub(heartbeat.updated_unix_ms)
}

/// Folds one non-done shard's heartbeat into a dashboard row.
fn judge_live_shard(
    spool: &Path,
    shard: usize,
    total: u64,
    expected_kind: &str,
    now_ms: u64,
    stall_after_ms: u64,
) -> ShardStatusView {
    let mut view = ShardStatusView {
        shard,
        health: ShardHealth::Pending,
        done: 0,
        total,
        cases_per_sec: 0.0,
        age_ms: None,
        retries: 0,
        progress_write_failures: 0,
        note: String::new(),
    };
    match ShardHeartbeat::load(spool, shard) {
        Ok(None) => {
            // No heartbeat yet; an older worker may still stream progress.
            if let Ok(text) = fs::read_to_string(shard_progress_path(spool, shard)) {
                let mut parts = text.split_whitespace();
                if let (Some(Ok(done)), Some(Ok(_total))) = (
                    parts.next().map(str::parse::<u64>),
                    parts.next().map(str::parse::<u64>),
                ) {
                    view.done = done.min(total);
                }
            }
        }
        Ok(Some(heartbeat)) => {
            if heartbeat.kind != expected_kind {
                view.health = ShardHealth::Unknown;
                view.note = format!("heartbeat kind {:?} does not match spool", heartbeat.kind);
                return view;
            }
            let age = heartbeat_age_ms(&heartbeat, now_ms);
            view.health = if age <= stall_after_ms {
                ShardHealth::Running
            } else {
                ShardHealth::Stalled
            };
            view.done = heartbeat.done.min(total);
            view.cases_per_sec = heartbeat.cases_per_sec;
            view.age_ms = Some(age);
            view.retries = heartbeat.retries;
            view.progress_write_failures = heartbeat.progress_write_failures;
            if let Some(generation) = heartbeat.generation {
                view.note = format!(
                    "gen {generation}, {} iters, {} corpus",
                    heartbeat.iterations.unwrap_or(0),
                    heartbeat.corpus_entries.unwrap_or(0)
                );
            }
        }
        Err(reason) => {
            view.health = ShardHealth::Unknown;
            view.note = reason;
        }
    }
    view
}

fn finish_report(kind: SpoolKind, shards: Vec<ShardStatusView>) -> CampaignStatusReport {
    let done_units: u64 = shards.iter().map(|s| s.done).sum();
    let total_units: u64 = shards.iter().map(|s| s.total).sum();
    let rate: f64 = shards
        .iter()
        .filter(|s| s.health == ShardHealth::Running)
        .map(|s| s.cases_per_sec)
        .sum();
    let remaining = total_units.saturating_sub(done_units);
    let eta_secs = (remaining > 0 && rate > 0.0).then(|| (remaining as f64 / rate).ceil() as u64);
    let stalled = shards
        .iter()
        .filter(|s| s.health == ShardHealth::Stalled)
        .count();
    let complete = shards.iter().all(|s| s.health == ShardHealth::Done);
    CampaignStatusReport {
        kind,
        shards,
        done_units,
        total_units,
        eta_secs,
        stalled,
        complete,
    }
}

/// Folds a spool directory into a [`CampaignStatusReport`].
///
/// `now_ms` is the caller's wallclock (milliseconds since the epoch,
/// [`now_unix_ms`]); `stall_after_ms` is the heartbeat age beyond which a
/// shard counts as stalled. Torn or garbage per-shard files degrade that
/// shard to [`ShardHealth::Unknown`]; only a missing or unreadable
/// *manifest* fails the whole fold.
///
/// # Errors
///
/// Returns a display-ready message when the spool holds no recognizable
/// campaign.
pub fn campaign_status(
    spool: &Path,
    now_ms: u64,
    stall_after_ms: u64,
) -> Result<CampaignStatusReport, String> {
    let kind = detect_spool_kind(spool).ok_or_else(|| {
        format!(
            "{}: not a campaign spool (no manifest.txt or fuzz-manifest.txt)",
            spool.display()
        )
    })?;
    match kind {
        SpoolKind::Sweep | SpoolKind::Frontier => {
            let manifest = ShardManifest::load(spool)
                .map_err(|e| format!("cannot load manifest: {e}"))?
                .ok_or("manifest disappeared mid-read")?;
            let shards = manifest
                .shards
                .iter()
                .enumerate()
                .map(|(shard, entry)| {
                    let total = entry.range.len() as u64;
                    if shard_report_path(spool, shard).exists() {
                        ShardStatusView {
                            shard,
                            health: ShardHealth::Done,
                            done: total,
                            total,
                            cases_per_sec: 0.0,
                            age_ms: None,
                            retries: u64::from(entry.attempts),
                            progress_write_failures: 0,
                            note: String::new(),
                        }
                    } else {
                        judge_live_shard(spool, shard, total, "sweep", now_ms, stall_after_ms)
                    }
                })
                .collect();
            Ok(finish_report(kind, shards))
        }
        SpoolKind::Fuzz => {
            let manifest = FuzzManifest::load(spool)
                .map_err(|e| format!("cannot load fuzz manifest: {e}"))?
                .ok_or("fuzz manifest disappeared mid-read")?;
            let generations = manifest.generations.max(1);
            let shards = manifest
                .shards
                .iter()
                .enumerate()
                .map(|(shard, entry)| {
                    let streams = entry.range.len() as u64;
                    let gens_published = (0..generations)
                        .take_while(|g| fuzz_shard_report_path(spool, shard, *g).exists())
                        .count();
                    let total = streams * generations as u64;
                    if gens_published == generations {
                        ShardStatusView {
                            shard,
                            health: ShardHealth::Done,
                            done: total,
                            total,
                            cases_per_sec: 0.0,
                            age_ms: None,
                            retries: u64::from(entry.attempts),
                            progress_write_failures: 0,
                            note: format!("gen {generations}/{generations}"),
                        }
                    } else {
                        let mut view =
                            judge_live_shard(spool, shard, streams, "fuzz", now_ms, stall_after_ms);
                        // Rebase the in-generation stream count onto the
                        // whole shard's stream-unit scale.
                        view.done = (gens_published as u64 * streams + view.done).min(total);
                        view.total = total;
                        view
                    }
                })
                .collect();
            Ok(finish_report(kind, shards))
        }
    }
}

// --------------------------------------------------------------------------
// Rendering
// --------------------------------------------------------------------------

fn fmt_age(age_ms: Option<u64>) -> String {
    match age_ms {
        Some(ms) if ms < 1_000 => format!("{ms}ms ago"),
        Some(ms) if ms < 120_000 => format!("{:.1}s ago", ms as f64 / 1_000.0),
        Some(ms) => format!("{}m ago", ms / 60_000),
        None => "-".to_string(),
    }
}

fn fmt_eta(eta_secs: Option<u64>) -> String {
    match eta_secs {
        Some(s) if s < 120 => format!("~{s}s"),
        Some(s) if s < 7_200 => format!("~{}m", s / 60),
        Some(s) => format!("~{}h", s / 3_600),
        None => "-".to_string(),
    }
}

/// Renders a status report as the aligned text dashboard the
/// `campaign_status` binary prints.
pub fn render_status(spool: &Path, report: &CampaignStatusReport) -> String {
    let mut out = format!(
        "{} [{}]  {}/{} units  eta {}  stalled {}{}\n",
        spool.display(),
        report.kind.name(),
        report.done_units,
        report.total_units,
        fmt_eta(report.eta_secs),
        report.stalled,
        if report.complete { "  COMPLETE" } else { "" },
    );
    let mut rows: Vec<[String; 7]> = vec![[
        "shard".into(),
        "state".into(),
        "progress".into(),
        "rate".into(),
        "beat".into(),
        "retries".into(),
        "note".into(),
    ]];
    for s in &report.shards {
        let pct = if s.total > 0 {
            format!(" ({}%)", s.done * 100 / s.total)
        } else {
            String::new()
        };
        let mut note = s.note.clone();
        if s.progress_write_failures > 0 {
            if !note.is_empty() {
                note.push_str("; ");
            }
            note.push_str(&format!("{} failed writes", s.progress_write_failures));
        }
        rows.push([
            format!("{:04}", s.shard),
            s.health.name().to_string(),
            format!("{}/{}{pct}", s.done, s.total),
            if s.cases_per_sec > 0.0 {
                format!("{:.1}/s", s.cases_per_sec)
            } else {
                "-".to_string()
            },
            fmt_age(s.age_ms),
            s.retries.to_string(),
            note,
        ]);
    }
    let mut widths = [0usize; 7];
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    for row in &rows {
        let mut line = String::new();
        for (i, (cell, width)) in row.iter().zip(widths.iter()).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(cell);
            if i + 1 < row.len() {
                for _ in cell.len()..*width {
                    line.push(' ');
                }
            }
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{init_spool, run_shard};
    use crate::sweep::SweepConfig;
    use proptest::prelude::*;

    fn temp_spool(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "regemu-status-{tag}-{}-{}",
            std::process::id(),
            now_unix_ms()
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn tiny_config() -> SweepConfig {
        let mut config = SweepConfig::quick();
        config.seeds = vec![7];
        config.threads = 1;
        config
    }

    #[test]
    fn heartbeat_round_trips_through_its_json() {
        let heartbeat = ShardHeartbeat {
            version: HEARTBEAT_VERSION,
            kind: "fuzz".to_string(),
            shard: 3,
            done: 5,
            total: 8,
            cases_per_sec: 12.5,
            retries: 2,
            progress_write_failures: 1,
            generation: Some(1),
            iterations: Some(4_000),
            corpus_entries: Some(9),
            updated_unix_ms: 1_700_000_000_000,
        };
        let parsed = ShardHeartbeat::from_json(&heartbeat.to_json()).unwrap();
        assert_eq!(parsed, heartbeat);

        let sweep = ShardHeartbeat {
            kind: "sweep".to_string(),
            generation: None,
            iterations: None,
            corpus_entries: None,
            ..heartbeat
        };
        assert_eq!(ShardHeartbeat::from_json(&sweep.to_json()).unwrap(), sweep);
    }

    #[test]
    fn unsupported_versions_and_missing_fields_are_rejected() {
        let good = ShardHeartbeat {
            version: HEARTBEAT_VERSION,
            kind: "sweep".to_string(),
            shard: 0,
            done: 1,
            total: 2,
            cases_per_sec: 1.0,
            retries: 0,
            progress_write_failures: 0,
            generation: None,
            iterations: None,
            corpus_entries: None,
            updated_unix_ms: 1,
        }
        .to_json();
        let future = good.replace("\"version\":1", "\"version\":99");
        assert!(ShardHeartbeat::from_json(&future)
            .unwrap_err()
            .contains("version"));
        let hollow = good.replace("\"done\":1,", "");
        assert!(ShardHeartbeat::from_json(&hollow)
            .unwrap_err()
            .contains("done"));
        assert!(ShardHeartbeat::from_json("{}").is_err());
        assert!(ShardHeartbeat::from_json("").is_err());
    }

    #[test]
    fn run_shard_publishes_heartbeats_and_the_dashboard_reads_them() {
        let spool = temp_spool("sweep");
        let config = tiny_config();
        init_spool(&spool, &config, 2).unwrap();
        run_shard(&spool, 0, 1).unwrap();

        let heartbeat = ShardHeartbeat::load(&spool, 0).unwrap().unwrap();
        assert_eq!(heartbeat.kind, "sweep");
        assert_eq!(heartbeat.done, heartbeat.total);
        assert_eq!(heartbeat.progress_write_failures, 0);

        let now = now_unix_ms();
        let report = campaign_status(&spool, now, 60_000).unwrap();
        // `quick()` is a valid frontier grid, so the spool detects as a
        // frontier campaign (frontier shards run through sweep workers).
        let expected_kind = if FrontierConfig::from_sweep_config(&config).is_ok() {
            SpoolKind::Frontier
        } else {
            SpoolKind::Sweep
        };
        assert_eq!(report.kind, expected_kind);
        assert_eq!(report.shards.len(), 2);
        assert_eq!(report.shards[0].health, ShardHealth::Done);
        assert_eq!(report.shards[1].health, ShardHealth::Pending);
        assert!(!report.complete);

        // A heartbeat far older than the stall threshold flags the shard.
        let mut stale = heartbeat.clone();
        stale.shard = 1;
        stale.done = 1;
        write_atomically(&stats_path(&spool, 1), &stale.to_json()).unwrap();
        let later = campaign_status(&spool, now + 120_000, 60_000).unwrap();
        assert_eq!(later.shards[1].health, ShardHealth::Stalled);
        assert_eq!(later.stalled, 1);

        run_shard(&spool, 1, 1).unwrap();
        let done = campaign_status(&spool, now_unix_ms(), 60_000).unwrap();
        assert!(done.complete);
        assert_eq!(done.done_units, done.total_units);
        let text = render_status(&spool, &done);
        assert!(text.contains("COMPLETE"), "{text}");
        fs::remove_dir_all(&spool).ok();
    }

    #[test]
    fn torn_stale_and_garbage_heartbeats_degrade_to_unknown_not_panic() {
        let spool = temp_spool("torn");
        let config = tiny_config();
        init_spool(&spool, &config, 2).unwrap();

        // Torn: a prefix of a real heartbeat, as a crash mid-write (without
        // the rename discipline) would leave.
        let full = ShardHeartbeat {
            version: HEARTBEAT_VERSION,
            kind: "sweep".to_string(),
            shard: 0,
            done: 3,
            total: 8,
            cases_per_sec: 2.0,
            retries: 0,
            progress_write_failures: 0,
            generation: None,
            iterations: None,
            corpus_entries: None,
            updated_unix_ms: now_unix_ms(),
        }
        .to_json();
        fs::write(stats_path(&spool, 0), &full[..full.len() / 2]).unwrap();
        // Garbage bytes in the other shard's heartbeat.
        fs::write(stats_path(&spool, 1), b"\xff\xfe{{{nonsense").unwrap();
        // A mid-rename leftover must be ignored entirely.
        fs::write(spool.join("stats-0000.tmp"), "{\"version\":").unwrap();

        let report = campaign_status(&spool, now_unix_ms(), 60_000).unwrap();
        assert_eq!(report.shards[0].health, ShardHealth::Unknown);
        assert_eq!(report.shards[1].health, ShardHealth::Unknown);
        assert!(!report.complete);
        // Rendering a report full of unknowns must not panic either.
        let _ = render_status(&spool, &report);
        fs::remove_dir_all(&spool).ok();
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        /// Satellite contract: arbitrary bytes in a heartbeat file never
        /// panic the parser and never parse as a *valid* future version.
        #[test]
        fn arbitrary_bytes_never_panic_the_heartbeat_parser(bytes in proptest::collection::vec(0u8..=255u8, 0..256)) {
            let text = String::from_utf8_lossy(&bytes).into_owned();
            if let Ok(heartbeat) = ShardHeartbeat::from_json(&text) {
                prop_assert_eq!(heartbeat.version, HEARTBEAT_VERSION);
            }
        }

        /// Every truncation of a valid heartbeat is rejected cleanly (the
        /// full text round-trips; any strict prefix errors, not panics).
        #[test]
        fn truncated_heartbeats_are_rejected_not_panicked(cut in 0usize..160, done in 0u64..1_000) {
            let full = ShardHeartbeat {
                version: HEARTBEAT_VERSION,
                kind: "sweep".to_string(),
                shard: 1,
                done,
                total: 1_000,
                cases_per_sec: done as f64 / 3.0,
                retries: 0,
                progress_write_failures: 0,
                generation: None,
                iterations: None,
                corpus_entries: None,
                updated_unix_ms: 123,
            }.to_json();
            let cut = cut.min(full.len());
            let result = ShardHeartbeat::from_json(&full[..cut]);
            if cut < full.trim_end().len() {
                prop_assert!(result.is_err());
            }
        }

        /// The dashboard fold itself survives any heartbeat bytes: shards
        /// degrade to `unknown`, the fold never errors on per-shard files.
        #[test]
        fn the_dashboard_fold_survives_arbitrary_heartbeat_bytes(bytes in proptest::collection::vec(0u8..=255u8, 0..128)) {
            let spool = temp_spool("prop");
            init_spool(&spool, &tiny_config(), 1).unwrap();
            fs::write(stats_path(&spool, 0), &bytes).unwrap();
            let report = campaign_status(&spool, now_unix_ms(), 60_000).unwrap();
            prop_assert_eq!(report.shards.len(), 1);
            let health = report.shards[0].health;
            prop_assert!(
                matches!(health, ShardHealth::Unknown | ShardHealth::Running | ShardHealth::Stalled),
                "unexpected health {:?}", health
            );
            fs::remove_dir_all(&spool).ok();
        }
    }
}
