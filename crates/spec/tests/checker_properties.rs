//! Property-based tests of the consistency checkers: the strength hierarchy
//! atomicity ⇒ WS-Regularity ⇒ WS-Safety holds on arbitrary schedules, and
//! schedules generated from a sequential oracle always pass every checker.

use proptest::prelude::*;
use regemu_fpsm::{HighOp, HighResponse};
use regemu_spec::prelude::*;
use regemu_spec::Semantics;

/// A random schedule: operations with random intervals and random (possibly
/// wrong) read return values.
fn arbitrary_history(max_ops: usize) -> impl Strategy<Value = HighHistory> {
    proptest::collection::vec(
        (
            0usize..4,           // client
            proptest::bool::ANY, // is write
            0u64..4,             // value written / returned
            0u64..20,            // invocation time
            1u64..10,            // duration
        ),
        1..max_ops,
    )
    .prop_map(|ops| {
        let mut h = HighHistory::default();
        for (client, is_write, value, start, len) in ops {
            if is_write {
                h.push_complete(
                    client,
                    HighOp::Write(value),
                    HighResponse::WriteAck,
                    start,
                    start + len,
                );
            } else {
                h.push_complete(
                    client,
                    HighOp::Read,
                    HighResponse::ReadValue(value),
                    start,
                    start + len,
                );
            }
        }
        h
    })
}

/// A schedule produced by executing sequential operations against the actual
/// sequential specification — correct by construction.
fn sequential_history(semantics: Semantics) -> impl Strategy<Value = HighHistory> {
    proptest::collection::vec((0usize..3, proptest::bool::ANY, 1u64..6), 1..12).prop_map(
        move |ops| {
            let spec = SequentialSpec {
                semantics,
                initial: 0,
            };
            let mut h = HighHistory::default();
            let mut state = 0;
            let mut time = 0;
            for (client, is_write, value) in ops {
                time += 2;
                if is_write {
                    state = spec.apply_write(state, value);
                    h.push_complete(
                        client,
                        HighOp::Write(value),
                        HighResponse::WriteAck,
                        time,
                        time + 1,
                    );
                } else {
                    h.push_complete(
                        client,
                        HighOp::Read,
                        HighResponse::ReadValue(state),
                        time,
                        time + 1,
                    );
                }
            }
            h
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Atomicity implies WS-Regularity implies WS-Safety, on any schedule.
    #[test]
    fn condition_hierarchy_holds(history in arbitrary_history(7)) {
        let spec = SequentialSpec::register();
        let atomic = check_linearizable(&history, &spec).is_ok();
        let regular = check_ws_regular(&history, &spec).is_ok();
        let safe = check_ws_safe(&history, &spec).is_ok();
        if atomic {
            prop_assert!(regular, "atomic but not WS-Regular: {history:?}");
        }
        if regular {
            prop_assert!(safe, "WS-Regular but not WS-Safe: {history:?}");
        }
    }

    /// Sequential executions of the register specification pass every checker.
    #[test]
    fn sequential_register_histories_pass_everything(
        history in sequential_history(Semantics::LastWrite)
    ) {
        let spec = SequentialSpec::register();
        prop_assert!(check_linearizable(&history, &spec).is_ok());
        prop_assert!(check_ws_regular(&history, &spec).is_ok());
        prop_assert!(check_ws_safe(&history, &spec).is_ok());
    }

    /// Sequential executions of the max-register specification pass every
    /// checker under the max-register semantics (and are generally *not*
    /// linearizable under plain register semantics once a smaller value is
    /// written over a larger one — the two specifications are distinct).
    #[test]
    fn sequential_max_register_histories_pass_their_spec(
        history in sequential_history(Semantics::Max)
    ) {
        let spec = SequentialSpec::max_register();
        prop_assert!(check_linearizable(&history, &spec).is_ok());
        prop_assert!(check_ws_regular(&history, &spec).is_ok());
    }

    /// Corrupting the return value of a read in an otherwise sequential
    /// schedule is caught by the WS-Safety checker (and therefore by the
    /// stronger ones too) whenever the corrupted value is not legitimately
    /// readable.
    #[test]
    fn corrupted_reads_are_detected(
        history in sequential_history(Semantics::LastWrite),
        bogus in 100u64..200,
    ) {
        // Only meaningful if there is at least one complete read.
        let spec = SequentialSpec::register();
        let mut intervals = history.ops().to_vec();
        let Some(pos) = intervals.iter().position(|iv| iv.op.is_read()) else {
            return Ok(());
        };
        intervals[pos].returned = Some((
            intervals[pos].returned.unwrap().0,
            HighResponse::ReadValue(bogus),
        ));
        let corrupted = HighHistory::from_intervals(intervals);
        // `bogus` is far outside the written value domain (1..6), so no
        // linearization can explain it.
        prop_assert!(check_ws_safe(&corrupted, &spec).is_err());
        prop_assert!(check_ws_regular(&corrupted, &spec).is_err());
        prop_assert!(check_linearizable(&corrupted, &spec).is_err());
    }

    /// The WS checkers never reject a schedule with no reads: writes alone
    /// are always explainable.
    #[test]
    fn write_only_histories_are_always_accepted(history in arbitrary_history(7)) {
        let writes_only = HighHistory::from_intervals(
            history.ops().iter().copied().filter(|iv| iv.op.is_write()).collect(),
        );
        let spec = SequentialSpec::register();
        prop_assert!(check_ws_regular(&writes_only, &spec).is_ok());
        prop_assert!(check_ws_safe(&writes_only, &spec).is_ok());
        prop_assert!(check_linearizable(&writes_only, &spec).is_ok());
    }
}
