//! `fuzz_coordinator` — drive a sharded multi-process fuzz campaign over a
//! spool directory, with corpus exchange, deterministic failure merge and
//! resume.
//!
//! ```text
//! cargo run --release -p regemu-bench --bin fuzz_coordinator -- \
//!     --spool DIR [OPTIONS]
//!
//! OPTIONS (campaign):
//!   --spool DIR         spool directory (manifest, config, corpus, failures)
//!   --shards N          shard count for a fresh campaign (default 4;
//!                       resuming keeps the existing manifest's plan)
//!   --workers M         concurrent worker processes (default 2)
//!   --retries R         attempt budget per (shard, generation) unit
//!                       (default 3)
//!   --worker-bin PATH   fuzz_worker binary (default: next to this one)
//!   --in-process        run units inside this process instead of spawning
//!   --exit-after N      stop after completing N units (kill simulation;
//!                       rerun the same command to resume)
//!   --seed-corpus DIR   import DIR's *.trace files (e.g. a previous
//!                       campaign's corpus-*.trace) as generation-0 seeds
//!   --merge-only        only merge existing failure files, run nothing
//!   --quiet             no progress lines
//!   --out FILE          write the campaign report (- for stdout, default)
//!   --failures FILE     write the merged failure artifact (- for stdout)
//!
//! OPTIONS (fuzz config, for a fresh spool):
//!   --params k,f,n      parameter point (default 1,1,3)
//!   --emulation NAME    construction or seeded bug (default space-optimal)
//!   --workload LABEL    workload shape (default write-seq/r1+read)
//!   --check NAME        consistency condition (default ws-regular)
//!   --seed S            campaign master seed
//!   --budget B          TOTAL iteration budget across all streams
//!   --streams N         fuzzing streams (default 8; the determinism unit)
//!   --generations G     corpus-exchange generations per stream (default 2)
//! ```
//!
//! The merged failure artifact is **byte-identical** for any shard count,
//! worker count or completion order, and a killed campaign resumes from the
//! manifest: rerunning the same command re-runs only incomplete units.
//!
//! Exit status: `0` when the campaign completed clean, `2` when the merged
//! failure set is non-empty, `3` when paused via `--exit-after`, `1` on
//! usage or I/O errors.

use regemu_bench::cli::{set_quiet, write_output};
use regemu_bench::info;
use regemu_workloads::campaign::WorkerMode;
use regemu_workloads::fuzz::campaign::{
    fuzz_config_fingerprint, import_seed_corpus, load_fuzz_config, merge_fuzz_campaign,
    run_fuzz_campaign, FuzzCampaignConfig, FuzzCampaignOptions,
};
use regemu_workloads::fuzz::{FuzzConfig, FuzzEmulation};
use regemu_workloads::{ConsistencyCheck, WorkloadSpec};
use std::path::PathBuf;
use std::time::Instant;

fn fail(msg: &str) -> ! {
    eprintln!("fuzz_coordinator: {msg}");
    eprintln!(
        "usage: fuzz_coordinator --spool DIR [--shards N] [--workers M] [--retries R] \
         [--worker-bin PATH] [--in-process] [--exit-after N] [--seed-corpus DIR] \
         [--merge-only] [--quiet] [--out FILE] [--failures FILE] [--params k,f,n] \
         [--emulation NAME] [--workload LABEL] [--check NAME] [--seed S] [--budget B] \
         [--streams N] [--generations G]"
    );
    std::process::exit(1);
}

fn default_worker_bin() -> PathBuf {
    let Ok(me) = std::env::current_exe() else {
        return PathBuf::from("fuzz_worker");
    };
    let mut bin = me;
    bin.set_file_name(format!("fuzz_worker{}", std::env::consts::EXE_SUFFIX));
    bin
}

fn main() {
    let mut spool: Option<PathBuf> = None;
    let mut shards: usize = 4;
    let mut workers: usize = 2;
    let mut retries: u32 = 3;
    let mut worker_bin: Option<PathBuf> = None;
    let mut in_process = false;
    let mut exit_after: Option<usize> = None;
    let mut seed_corpus_dir: Option<PathBuf> = None;
    let mut merge_only = false;
    let mut quiet = false;
    let mut out = "-".to_string();
    let mut failures_out: Option<String> = None;

    let mut params = regemu_bounds::Params::new(1, 1, 3).expect("default parameters");
    let mut fuzz_edits: Vec<Box<dyn FnOnce(FuzzConfig) -> FuzzConfig>> = Vec::new();
    let mut streams: Option<usize> = None;
    let mut generations: Option<usize> = None;
    let mut any_config_flag = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
        };
        let parse_usize = |flag: &str, v: String| -> usize {
            v.parse()
                .unwrap_or_else(|_| fail(&format!("invalid {flag} value {v:?}")))
        };
        match arg.as_str() {
            "--spool" => spool = Some(PathBuf::from(value("--spool"))),
            "--shards" => shards = parse_usize("--shards", value("--shards")).max(1),
            "--workers" => workers = parse_usize("--workers", value("--workers")).max(1),
            "--retries" => {
                retries = value("--retries")
                    .parse()
                    .unwrap_or_else(|_| fail("invalid --retries value"));
            }
            "--worker-bin" => worker_bin = Some(PathBuf::from(value("--worker-bin"))),
            "--in-process" => in_process = true,
            "--exit-after" => {
                exit_after = Some(parse_usize("--exit-after", value("--exit-after")));
            }
            "--seed-corpus" => seed_corpus_dir = Some(PathBuf::from(value("--seed-corpus"))),
            "--merge-only" => merge_only = true,
            "--quiet" => {
                quiet = true;
                set_quiet();
            }
            "--out" => out = value("--out"),
            "--failures" => failures_out = Some(value("--failures")),
            "--params" => {
                any_config_flag = true;
                let v = value("--params");
                let parts: Vec<usize> = v
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse()
                            .unwrap_or_else(|_| fail(&format!("invalid parameter {s:?}")))
                    })
                    .collect();
                if parts.len() != 3 {
                    fail("--params needs k,f,n");
                }
                params = regemu_bounds::Params::new(parts[0], parts[1], parts[2])
                    .unwrap_or_else(|e| fail(&format!("invalid parameters: {e}")));
            }
            "--emulation" => {
                any_config_flag = true;
                let v = value("--emulation");
                let emulation = FuzzEmulation::from_name(&v)
                    .unwrap_or_else(|| fail(&format!("unknown emulation {v:?}")));
                fuzz_edits.push(Box::new(move |c| c.emulation(emulation)));
            }
            "--workload" => {
                any_config_flag = true;
                let v = value("--workload");
                let workload = WorkloadSpec::from_label(&v)
                    .unwrap_or_else(|| fail(&format!("unknown workload {v:?}")));
                fuzz_edits.push(Box::new(move |c| c.workload(workload)));
            }
            "--check" => {
                any_config_flag = true;
                let v = value("--check");
                let check = ConsistencyCheck::from_name(&v)
                    .unwrap_or_else(|| fail(&format!("unknown check {v:?}")));
                fuzz_edits.push(Box::new(move |c| c.check(check)));
            }
            "--seed" => {
                any_config_flag = true;
                let v = value("--seed");
                let seed: u64 = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("invalid seed {v:?}")));
                fuzz_edits.push(Box::new(move |c| c.seed(seed)));
            }
            "--budget" => {
                any_config_flag = true;
                let budget = parse_usize("--budget", value("--budget"));
                fuzz_edits.push(Box::new(move |c| c.budget(budget)));
            }
            "--streams" => {
                any_config_flag = true;
                streams = Some(parse_usize("--streams", value("--streams")));
            }
            "--generations" => {
                any_config_flag = true;
                generations = Some(parse_usize("--generations", value("--generations")));
            }
            other => fail(&format!("unknown option {other:?}")),
        }
    }
    let spool = spool.unwrap_or_else(|| fail("--spool is required"));

    let cli_config = || -> FuzzCampaignConfig {
        let mut fuzz = FuzzConfig::new(params);
        for edit in fuzz_edits {
            fuzz = edit(fuzz);
        }
        let mut config = FuzzCampaignConfig::new(fuzz);
        if let Some(streams) = streams {
            config = config.streams(streams);
        }
        if let Some(generations) = generations {
            config = config.generations(generations);
        }
        config
    };

    let emit = |report: &regemu_workloads::fuzz::FuzzCampaignReport| {
        write_output(&out, &report.to_text(), "fuzz campaign report");
        if let Some(path) = &failures_out {
            write_output(path, &report.failures_text(), "merged failures");
        }
        if report.found() {
            eprintln!(
                "fuzz_coordinator: {} distinct failure(s) in the merged set",
                report.failures.len()
            );
            std::process::exit(2);
        }
        info!(
            "fuzz_coordinator: clean — {} iterations, {} corpus entries published",
            report.iterations, report.corpus_published
        );
    };

    if merge_only {
        let report = merge_fuzz_campaign(&spool).unwrap_or_else(|e| {
            eprintln!("fuzz_coordinator: merge failed: {e}");
            std::process::exit(1);
        });
        emit(&report);
        return;
    }

    // A resumed spool dictates the config; a fresh one takes it from the
    // CLI flags. Config flags that contradict an existing spool are an
    // error, not a silent re-run of the old campaign.
    let config = match load_fuzz_config(&spool) {
        Ok(config) => {
            if any_config_flag {
                let cli = cli_config();
                if fuzz_config_fingerprint(&cli) != fuzz_config_fingerprint(&config) {
                    fail(&format!(
                        "spool {} was created for a different fuzz config than the flags \
                         passed; drop the config flags to resume it, or use a fresh --spool",
                        spool.display()
                    ));
                }
            }
            info!(
                "fuzz_coordinator: resuming spool {} ({} streams x {} generations)",
                spool.display(),
                config.streams,
                config.generations
            );
            config
        }
        Err(_) => cli_config(),
    };

    // Seeds must land before the manifest freezes them into generation 0.
    if let Some(dir) = &seed_corpus_dir {
        match import_seed_corpus(&spool, dir) {
            Ok(count) => info!(
                "fuzz_coordinator: seeded {count} generation-0 case(s) from {}",
                dir.display()
            ),
            Err(e) => {
                eprintln!("fuzz_coordinator: {e}");
                std::process::exit(1);
            }
        }
    }

    let mut options = FuzzCampaignOptions::new(&spool);
    options.shards = shards;
    options.workers = workers;
    options.max_attempts = retries.max(1);
    options.worker = if in_process {
        WorkerMode::InProcess
    } else {
        let bin = worker_bin.unwrap_or_else(default_worker_bin);
        if !bin.exists() {
            fail(&format!(
                "worker binary {} not found; build it (cargo build -p regemu-bench) or pass \
                 --worker-bin / --in-process",
                bin.display()
            ));
        }
        WorkerMode::Spawn(bin)
    };
    options.exit_after = exit_after;
    options.quiet = quiet;

    let started = Instant::now();
    let outcome = run_fuzz_campaign(&config, &options).unwrap_or_else(|e| {
        eprintln!("fuzz_coordinator: {e}");
        std::process::exit(1);
    });
    let elapsed = started.elapsed();
    let done = if outcome.report.is_some() {
        outcome.units_total
    } else {
        outcome.units_run + outcome.units_reused
    };
    info!(
        "fuzz campaign: {done}/{} units done in {elapsed:.2?} ({} run now, {} reused, \
         {} retried)",
        outcome.units_total, outcome.units_run, outcome.units_reused, outcome.retries,
    );

    match outcome.report {
        Some(report) => emit(&report),
        None => {
            info!("fuzz campaign stopped early (--exit-after); rerun the same command to resume");
            // Distinguish "paused" from success so scripts notice.
            std::process::exit(3);
        }
    }
}
