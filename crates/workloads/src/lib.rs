//! # regemu-workloads — workload generation and experiment running
//!
//! Glue between the emulation algorithms (`regemu-core`), the fault-prone
//! shared-memory simulator (`regemu-fpsm`), the consistency checkers
//! (`regemu-spec`) and the adversary (`regemu-adversary`):
//!
//! * [`generator::Workload`] — deterministic workload generators
//!   (write-sequential, read-heavy, random mixed, concurrent);
//! * [`runner::run_workload`] — execute a workload against an emulation
//!   under a seeded fair scheduler with optional crash plan, measure the
//!   space consumption and check a consistency condition;
//! * [`sweep::run_sweep`] — fan a `(k, f, n) × emulation × workload × seed`
//!   grid out across worker threads and aggregate the measurements into a
//!   deterministic [`sweep::SweepReport`] (JSON/CSV serializable);
//! * [`table`] — parameter sweeps and plain-text table rendering used by the
//!   experiment binaries in `regemu-bench`.
//!
//! ## The runner contract
//!
//! [`runner::run_workload`] is the single execution path every experiment,
//! sweep case and bench goes through. Given an emulation, a workload and a
//! [`runner::RunConfig`], it guarantees:
//!
//! 1. **Seeded scheduling** — all nondeterminism (delivery order, workload
//!    mix) flows from `RunConfig::seed`; the same inputs replay the same
//!    run, event for event.
//! 2. **Sequential clients** — each client's high-level operations are
//!    issued one at a time (waiting for the previous one when the workload
//!    marks an op `sequential`), as the model requires.
//! 3. **Optional crash injection** — the [`regemu_fpsm::CrashPlan`] crashes
//!    servers at fixed logical times, within the emulation's fault budget.
//! 4. **Measurement** — the returned [`runner::RunReport`] carries the
//!    [`regemu_fpsm::RunMetrics`] (resource consumption, coverage, point
//!    contention, trigger/response counts) and the high-level schedule.
//! 5. **Checking** — when a [`runner::ConsistencyCheck`] is selected, the
//!    schedule is verified and any violation is reported, not panicked on.
//!
//! ## Example
//!
//! ```
//! use regemu_workloads::prelude::*;
//! use regemu_core::{Emulation, SpaceOptimalEmulation};
//! use regemu_bounds::Params;
//!
//! let emulation = SpaceOptimalEmulation::new(Params::new(2, 1, 4)?);
//! let workload = Workload::write_sequential(2, 1, true);
//! let report = run_workload(&emulation, &workload, &RunConfig::with_seed(7))?;
//! assert!(report.is_consistent());
//! assert_eq!(report.metrics.resource_consumption(), emulation.base_object_count());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod generator;
pub mod runner;
pub mod sweep;
pub mod table;

pub use generator::{Issuer, Workload, WorkloadOp};
pub use runner::{run_workload, ConsistencyCheck, RunConfig, RunReport};
pub use sweep::{
    run_sweep, CaseResult, EmulationKind, SweepCase, SweepConfig, SweepReport, WorkloadSpec,
};
pub use table::{small_sweep, standard_sweep, TextTable};

/// Convenient glob import of the most frequently used items.
pub mod prelude {
    pub use crate::generator::{Issuer, Workload};
    pub use crate::runner::{run_workload, ConsistencyCheck, RunConfig, RunReport};
    pub use crate::sweep::{
        run_sweep, CaseResult, EmulationKind, SweepCase, SweepConfig, SweepReport, WorkloadSpec,
    };
    pub use crate::table::{small_sweep, standard_sweep, TextTable};
}
