//! A miniature "cloud object store" cell built on crash-prone disks.
//!
//! ```text
//! cargo run --example cloud_kv
//! ```
//!
//! The paper's motivation is cloud storage built from fault-prone servers
//! whose interfaces are limited to basic read/write (network-attached disks)
//! or simple conditional updates (CAS). This example builds a tiny replicated
//! key-value cell — one emulated register per key, each key one [`Scenario`]
//! — and compares the space cost of three server interfaces side by side:
//!
//! * plain read/write registers (Algorithm 2),
//! * max-registers (multi-writer ABD),
//! * CAS (ABD with Algorithm 1 per server).
//!
//! It then runs the same update/lookup workload against each backend, with a
//! disk crash injected mid-run, and verifies every observed schedule.

use regemu::prelude::*;

/// One key's workload: tenant updates followed by a lookup.
/// `(tenant, value)` pairs become writes; the final read is the lookup.
fn key_workload(updates: &[(usize, u64)]) -> Workload {
    let mut steps: Vec<WorkloadOp> = updates
        .iter()
        .map(|&(tenant, value)| WorkloadOp {
            issuer: Issuer::Writer(tenant),
            op: HighOp::Write(value),
            sequential: true,
        })
        .collect();
    steps.push(WorkloadOp {
        issuer: Issuer::Reader(0),
        op: HighOp::Read,
        sequential: true,
    });
    Workload::from_steps(steps)
}

fn exercise(kind: EmulationKind, params: Params) -> Result<(), Box<dyn std::error::Error>> {
    // Keys and their tenant updates; the last write per key is the expected
    // lookup result.
    let keys: [(&str, Vec<(usize, u64)>); 3] = [
        ("users/alice", vec![(0, 1001), (1, 1002)]),
        ("users/bob", vec![(1, 2001)]),
        ("billing/invoice-7", vec![(2, 777)]),
    ];

    let backend = kind.build(params);
    println!(
        "backend {:<18} [{}]: {} base objects per key, {} per 3-key cell",
        kind.name(),
        backend.base_object_kind(),
        backend.base_object_count(),
        3 * backend.base_object_count(),
    );

    for (key, updates) in &keys {
        let expected = updates.last().expect("every key has updates").1;
        let scenario = Scenario::new(params)
            .emulation(kind)
            .workload_steps(key_workload(updates))
            .check(ConsistencyCheck::WsRegular)
            .seed(7);

        // Drive the key's scenario, crashing a disk after the first update
        // has landed (f = 1: the cell keeps serving).
        let mut run = scenario.build();
        while run.completed_ops() < 1 {
            run.step()?;
        }
        run.crash_server(ServerId::new(params.n - 1))?;
        run.run()?;

        let looked_up = run
            .history()
            .intervals()
            .last()
            .and_then(|read| read.returned.and_then(|(_, v)| v.payload()))
            .expect("lookup completed");
        assert_eq!(looked_up, expected, "{key}: wrong lookup after crash");

        let report = run.into_report();
        assert!(
            report.is_consistent(),
            "{key}: {:?}",
            report.check_violation
        );
    }
    println!("    lookups correct after a disk crash, schedules WS-Regular ✔");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 3 tenants may update each key, the cell tolerates one disk crash, and
    // 5 disks are available.
    let params = Params::new(3, 1, 5)?;
    println!("replicated KV cell with {params}\n");

    exercise(EmulationKind::SpaceOptimal, params)?;
    exercise(EmulationKind::AbdMaxRegister, params)?;
    exercise(EmulationKind::AbdCas, params)?;

    println!(
        "\nSpace separation (Table 1): plain disks need {} registers per key, \
         while max-register or CAS disks need only {} — and the gap grows \
         linearly with the number of tenants.",
        register_upper_bound(params),
        max_register_bound(params.f),
    );
    Ok(())
}
