//! System topology: servers, base objects and the placement function `δ`.
//!
//! A [`Topology`] describes *which* base objects exist, of what
//! [`ObjectKind`], and on which server each one lives. It corresponds to the
//! mapping `δ : B → S` of the paper; [`Topology::server_of`] is `δ` and
//! [`Topology::objects_on`] is `δ⁻¹`.

use crate::ids::{ObjectId, ServerId};
use crate::object::ObjectKind;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Static description of the servers, base objects and their placement.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Topology {
    /// Number of servers `n = |S|`.
    servers: usize,
    /// For each object (indexed by `ObjectId`), its kind and hosting server.
    objects: Vec<(ObjectKind, ServerId)>,
}

impl Topology {
    /// Creates a topology with `servers` servers and no objects yet.
    pub fn new(servers: usize) -> Self {
        Topology {
            servers,
            objects: Vec::new(),
        }
    }

    /// Number of servers `n`.
    pub fn server_count(&self) -> usize {
        self.servers
    }

    /// Number of base objects `|B|` (the resource consumption of the layout).
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Iterator over all server identifiers.
    pub fn servers(&self) -> impl Iterator<Item = ServerId> + '_ {
        (0..self.servers).map(ServerId::new)
    }

    /// Iterator over all object identifiers.
    pub fn objects(&self) -> impl Iterator<Item = ObjectId> + '_ {
        (0..self.objects.len()).map(ObjectId::new)
    }

    /// Adds a new server and returns its identifier.
    pub fn add_server(&mut self) -> ServerId {
        let id = ServerId::new(self.servers);
        self.servers += 1;
        id
    }

    /// Adds a base object of the given kind on `server` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `server` does not exist.
    pub fn add_object(&mut self, kind: ObjectKind, server: ServerId) -> ObjectId {
        assert!(
            server.index() < self.servers,
            "server {server} does not exist (topology has {} servers)",
            self.servers
        );
        let id = ObjectId::new(self.objects.len());
        self.objects.push((kind, server));
        id
    }

    /// Adds one object of `kind` on every server (the classic ABD layout).
    /// Returns the created object ids, indexed by server.
    pub fn add_object_per_server(&mut self, kind: ObjectKind) -> Vec<ObjectId> {
        self.servers()
            .collect::<Vec<_>>()
            .into_iter()
            .map(|s| self.add_object(kind, s))
            .collect()
    }

    /// The placement function `δ`: the server hosting `object`.
    ///
    /// # Panics
    ///
    /// Panics if `object` does not exist.
    pub fn server_of(&self, object: ObjectId) -> ServerId {
        self.objects[object.index()].1
    }

    /// The kind of `object`.
    ///
    /// # Panics
    ///
    /// Panics if `object` does not exist.
    pub fn kind_of(&self, object: ObjectId) -> ObjectKind {
        self.objects[object.index()].0
    }

    /// Returns `true` if the given object id exists.
    pub fn contains_object(&self, object: ObjectId) -> bool {
        object.index() < self.objects.len()
    }

    /// `δ⁻¹({server})`: all objects hosted on `server`.
    pub fn objects_on(&self, server: ServerId) -> Vec<ObjectId> {
        self.objects
            .iter()
            .enumerate()
            .filter(|(_, (_, s))| *s == server)
            .map(|(i, _)| ObjectId::new(i))
            .collect()
    }

    /// `δ⁻¹(S')` for a set of servers `S'`.
    pub fn objects_on_servers<I>(&self, servers: I) -> Vec<ObjectId>
    where
        I: IntoIterator<Item = ServerId>,
    {
        let set: BTreeSet<ServerId> = servers.into_iter().collect();
        self.objects
            .iter()
            .enumerate()
            .filter(|(_, (_, s))| set.contains(s))
            .map(|(i, _)| ObjectId::new(i))
            .collect()
    }

    /// `δ(B')`: the image of a set of objects under the placement function.
    pub fn servers_of<I>(&self, objects: I) -> BTreeSet<ServerId>
    where
        I: IntoIterator<Item = ObjectId>,
    {
        objects.into_iter().map(|b| self.server_of(b)).collect()
    }

    /// Number of objects stored on `server` (`|δ⁻¹({s})|`).
    pub fn occupancy(&self, server: ServerId) -> usize {
        self.objects.iter().filter(|(_, s)| *s == server).count()
    }

    /// The maximum per-server occupancy over all servers.
    pub fn max_occupancy(&self) -> usize {
        self.servers().map(|s| self.occupancy(s)).max().unwrap_or(0)
    }

    /// Number of objects of each kind, in the order of [`ObjectKind::ALL`].
    pub fn count_by_kind(&self, kind: ObjectKind) -> usize {
        self.objects.iter().filter(|(k, _)| *k == kind).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn building_a_topology() {
        let mut t = Topology::new(3);
        assert_eq!(t.server_count(), 3);
        assert_eq!(t.object_count(), 0);
        let b0 = t.add_object(ObjectKind::Register, ServerId::new(0));
        let b1 = t.add_object(ObjectKind::Register, ServerId::new(0));
        let b2 = t.add_object(ObjectKind::MaxRegister, ServerId::new(2));
        assert_eq!(t.object_count(), 3);
        assert_eq!(t.server_of(b0), ServerId::new(0));
        assert_eq!(t.server_of(b2), ServerId::new(2));
        assert_eq!(t.kind_of(b1), ObjectKind::Register);
        assert_eq!(t.kind_of(b2), ObjectKind::MaxRegister);
        assert_eq!(t.occupancy(ServerId::new(0)), 2);
        assert_eq!(t.occupancy(ServerId::new(1)), 0);
        assert_eq!(t.max_occupancy(), 2);
        assert_eq!(t.count_by_kind(ObjectKind::Register), 2);
        assert_eq!(t.count_by_kind(ObjectKind::Cas), 0);
    }

    #[test]
    fn delta_and_delta_inverse_are_consistent() {
        let mut t = Topology::new(4);
        let ids = t.add_object_per_server(ObjectKind::MaxRegister);
        assert_eq!(ids.len(), 4);
        for (i, b) in ids.iter().enumerate() {
            assert_eq!(t.server_of(*b), ServerId::new(i));
            assert_eq!(t.objects_on(ServerId::new(i)), vec![*b]);
        }
        let subset = t.objects_on_servers([ServerId::new(1), ServerId::new(3)]);
        assert_eq!(subset, vec![ids[1], ids[3]]);
        let image = t.servers_of(subset);
        assert!(image.contains(&ServerId::new(1)) && image.contains(&ServerId::new(3)));
        assert_eq!(image.len(), 2);
    }

    #[test]
    fn image_is_never_larger_than_preimage() {
        // |δ(B)| ≤ |B| and |δ⁻¹(S)| ≥ |S| when every server holds ≥ 1 object.
        let mut t = Topology::new(3);
        for s in 0..3 {
            for _ in 0..2 {
                t.add_object(ObjectKind::Register, ServerId::new(s));
            }
        }
        let all: Vec<ObjectId> = t.objects().collect();
        assert!(t.servers_of(all.clone()).len() <= all.len());
        let servers: Vec<ServerId> = t.servers().collect();
        assert!(t.objects_on_servers(servers.clone()).len() >= servers.len());
    }

    #[test]
    fn add_server_grows_the_system() {
        let mut t = Topology::new(0);
        let s0 = t.add_server();
        let s1 = t.add_server();
        assert_eq!(s0, ServerId::new(0));
        assert_eq!(s1, ServerId::new(1));
        assert_eq!(t.server_count(), 2);
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn placing_on_unknown_server_panics() {
        let mut t = Topology::new(1);
        t.add_object(ObjectKind::Register, ServerId::new(5));
    }
}
