//! Regenerates the **Section 5 discussion** measurement: the max-register
//! from a single CAS (Algorithm 1) trades space for time — the number of CAS
//! attempts per `write-max` grows with write concurrency, whereas a native
//! max-register always needs exactly one operation.
//!
//! ```text
//! cargo run -p regemu-bench --bin cas_time_complexity
//! ```

use regemu_bench::experiments::cas_time_complexity;

fn main() {
    println!("{}", cas_time_complexity(&[1, 2, 4, 8], 20_000));
    println!("(a native max-register performs exactly 1 operation per write-max, independent of concurrency)");
}
