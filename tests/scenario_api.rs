//! Scenario-API smoke: a tiny grid across *all* schedulers × *all*
//! emulations through the facade, plus the sweep axes and the incremental
//! run surface. This is the test the CI `scenario-smoke` job runs.
//!
//! The final block of tests was folded in from the removed
//! `run_workload`/`RunConfig` shim suite: the behavioural guarantees those
//! tests pinned (crash survival, atomic ABD, reader scaling, consumption =
//! Theorem 3) are now stated through `Scenario`, the single entry point.

use regemu::prelude::*;

#[test]
fn every_scheduler_drives_every_emulation_through_the_facade() {
    let params = Params::new(2, 1, 4).unwrap();
    for scheduler in SchedulerSpec::ALL {
        for kind in EmulationKind::ALL.into_iter().chain(EmulationKind::ATOMIC) {
            let report = Scenario::new(params)
                .emulation(kind)
                .workload(WorkloadSpec::WriteSequential {
                    rounds: 1,
                    read_after_each: true,
                })
                .scheduler(scheduler)
                .check(ConsistencyCheck::WsRegular)
                .seed(31)
                .run()
                .unwrap_or_else(|e| panic!("{kind} under {scheduler}: {e}"));
            assert!(
                report.is_consistent(),
                "{kind} under {scheduler}: {:?}",
                report.check_violation
            );
            assert_eq!(report.scheduler, scheduler.name());
            assert_eq!(report.completed_ops, 2 * params.k);
        }
    }
}

#[test]
fn sweeps_cross_scheduler_and_crash_plan_axes_deterministically() {
    let mut config = SweepConfig::quick();
    config.grid.truncate(2);
    config.workloads.truncate(1);
    config.schedulers = SchedulerSpec::ALL.to_vec();
    config.crash_plans = CrashPlanSpec::ALL.to_vec();
    config.threads = 1;
    let single = run_sweep(&config);
    assert_eq!(single.len(), config.case_count());
    assert_eq!(
        single.len(),
        2 * 4 * SchedulerSpec::ALL.len() * CrashPlanSpec::ALL.len()
    );
    assert!(single.all_consistent(), "{:?}", single.failures().next());
    config.threads = 4;
    let multi = run_sweep(&config);
    assert_eq!(single.to_json(), multi.to_json());
    assert_eq!(single.to_csv(), multi.to_csv());
    // The new axes are part of the serialized identity of each case.
    assert!(multi
        .to_json()
        .contains("\"scheduler\": \"adversary-silence\""));
    assert!(multi.to_json().contains("\"crashes\": \"crash-f\""));
}

#[test]
fn scenario_run_exposes_the_incremental_surface() {
    let params = Params::new(2, 1, 4).unwrap();
    let scenario = Scenario::new(params)
        .workload(WorkloadSpec::ConcurrentReadWrite { rounds: 2 })
        .seed(5)
        .drain();
    let mut run = scenario.build();
    // Step until the first completion, inspect mid-run state.
    while run.completed_ops() == 0 {
        assert!(run.step().unwrap());
    }
    assert!(run.history().total_events() > 0);
    let mid = run.metrics();
    assert!(mid.low_level_triggers > 0);
    // Crash within the budget, then finish.
    run.crash_server(ServerId::new(params.n - 1)).unwrap();
    run.run().unwrap();
    let report = run.into_report();
    assert!(report.is_consistent(), "{:?}", report.check_violation);
    assert_eq!(report.completed_ops, 2 * params.k * 2);
}

#[test]
fn pending_snapshot_agrees_with_the_event_log_scan_mid_run() {
    let params = Params::new(2, 1, 4).unwrap();
    let mut run = Scenario::new(params).seed(3).build();
    run.step().unwrap();
    run.step().unwrap();
    let snapshot = run.sim().pending_snapshot();
    assert_eq!(snapshot.len(), run.sim().pending_count());
    let ids: Vec<OpId> = snapshot.iter().map(|p| p.op_id).collect();
    let from_log: Vec<OpId> = run.history().pending_low_level().into_iter().collect();
    assert_eq!(ids, from_log);
}

#[test]
fn runs_survive_f_crashes_from_the_plan() {
    let params = Params::new(2, 1, 4).unwrap();
    for kind in EmulationKind::ALL {
        let report = Scenario::new(params)
            .emulation(kind)
            .workload(WorkloadSpec::WriteSequential {
                rounds: 2,
                read_after_each: true,
            })
            .crash_plan(CrashPlan::none().crash_at(5, ServerId::new(3)))
            .check(ConsistencyCheck::WsRegular)
            .seed(3)
            .run()
            .unwrap();
        assert!(
            report.is_consistent(),
            "{}: {:?}",
            report.emulation,
            report.check_violation
        );
    }
}

#[test]
fn atomic_abd_variant_is_linearizable_under_mixed_workloads() {
    let params = Params::new(2, 1, 3).unwrap();
    let workload = Workload::random_mixed(2, 2, 14, 0.5, 21);
    let report = Scenario::new(params)
        .emulation(EmulationKind::AbdMaxRegisterAtomic)
        .workload_steps(workload)
        .check(ConsistencyCheck::Atomic)
        .seed(23)
        .run()
        .unwrap();
    assert!(report.is_consistent(), "{:?}", report.check_violation);
}

#[test]
fn read_heavy_workloads_scale_readers_without_extra_space() {
    // Readers never write in the WS-Regular constructions, so piling on
    // readers does not change the resource consumption — the reason the
    // paper can state its bounds independently of the number of readers.
    let params = Params::new(2, 1, 4).unwrap();
    let scenario = Scenario::new(params).emulation(EmulationKind::SpaceOptimal);
    let a = scenario
        .clone()
        .workload(WorkloadSpec::ReadHeavy {
            writes: 2,
            reads_per_write: 1,
            readers: 1,
        })
        .seed(31)
        .run()
        .unwrap();
    let b = scenario
        .workload(WorkloadSpec::ReadHeavy {
            writes: 2,
            reads_per_write: 6,
            readers: 3,
        })
        .seed(32)
        .run()
        .unwrap();
    assert!(a.is_consistent() && b.is_consistent());
    assert_eq!(
        a.metrics.resource_consumption(),
        b.metrics.resource_consumption()
    );
    assert!(b.metrics.written.len() <= a.provisioned_objects);
    assert_eq!(b.completed_ops, 2 + 2 * 6);
}

#[test]
fn resource_consumption_matches_the_theorem_3_formula() {
    let params = Params::new(3, 1, 5).unwrap();
    let report = Scenario::new(params)
        .emulation(EmulationKind::SpaceOptimal)
        .workload(WorkloadSpec::WriteSequential {
            rounds: 1,
            read_after_each: false,
        })
        .run()
        .unwrap();
    // The writers only touch their own register sets plus whatever the
    // collect reads, which is the full layout: consumption equals the
    // provisioned count (= Theorem 3 formula).
    assert_eq!(
        report.metrics.resource_consumption(),
        report.provisioned_objects
    );
    assert_eq!(report.provisioned_objects, register_upper_bound(params));
}
