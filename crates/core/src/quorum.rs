//! Quorum bookkeeping helpers shared by the emulation protocols.
//!
//! Two kinds of quorums appear in the constructions:
//!
//! * **server quorums** — "wait until `n - f` servers have fully answered"
//!   (the `collect()` of Algorithm 2 and both phases of ABD); tracked by
//!   [`ServerQuorumTracker`];
//! * **register write quorums** — "wait until `|R_i| - f` of my registers
//!   acknowledged" (line 11 of Algorithm 2); tracked by
//!   [`RegisterQuorumTracker`].

use regemu_fpsm::{ObjectId, ServerId, Value};
use std::collections::{BTreeMap, BTreeSet};

/// Tracks completion of per-server tasks until a threshold of servers is
/// reached, accumulating the maximum [`Value`] observed along the way.
#[derive(Clone, Debug, Default)]
pub struct ServerQuorumTracker {
    threshold: usize,
    completed: BTreeSet<ServerId>,
    best: Value,
}

impl ServerQuorumTracker {
    /// Creates a tracker that is satisfied once `threshold` distinct servers
    /// completed.
    pub fn new(threshold: usize) -> Self {
        ServerQuorumTracker {
            threshold,
            completed: BTreeSet::new(),
            best: Value::INITIAL,
        }
    }

    /// Records that `server` completed its task, folding `value` (if any)
    /// into the running maximum. Re-completing a server has no effect.
    pub fn record(&mut self, server: ServerId, value: Option<Value>) {
        if let Some(v) = value {
            self.best = self.best.max(v);
        }
        self.completed.insert(server);
    }

    /// Number of servers recorded so far.
    pub fn completed_count(&self) -> usize {
        self.completed.len()
    }

    /// Returns `true` once the threshold has been reached.
    pub fn satisfied(&self) -> bool {
        self.completed.len() >= self.threshold
    }

    /// The maximum value observed across all recorded servers.
    pub fn best(&self) -> Value {
        self.best
    }

    /// The servers recorded so far.
    pub fn completed(&self) -> &BTreeSet<ServerId> {
        &self.completed
    }
}

/// Tracks write acknowledgements from a fixed set of registers until a
/// threshold is reached.
#[derive(Clone, Debug, Default)]
pub struct RegisterQuorumTracker {
    threshold: usize,
    acked: BTreeSet<ObjectId>,
}

impl RegisterQuorumTracker {
    /// Creates a tracker satisfied after `threshold` distinct registers ack.
    pub fn new(threshold: usize) -> Self {
        RegisterQuorumTracker {
            threshold,
            acked: BTreeSet::new(),
        }
    }

    /// Records an acknowledgement from `register`.
    pub fn record(&mut self, register: ObjectId) {
        self.acked.insert(register);
    }

    /// Registers that have acknowledged.
    pub fn acked(&self) -> &BTreeSet<ObjectId> {
        &self.acked
    }

    /// Number of distinct registers that have acknowledged.
    pub fn acked_count(&self) -> usize {
        self.acked.len()
    }

    /// Returns `true` once the threshold has been reached.
    pub fn satisfied(&self) -> bool {
        self.acked.len() >= self.threshold
    }
}

/// Tracks a `collect()`-style scan: for every server, the set of registers
/// that still have to respond; a server's scan is complete once all of its
/// registers responded. Satisfied once `threshold` servers completed.
#[derive(Clone, Debug, Default)]
pub struct ScanTracker {
    threshold: usize,
    outstanding: BTreeMap<ServerId, BTreeSet<ObjectId>>,
    completed: BTreeSet<ServerId>,
    best: Value,
    values: Vec<Value>,
}

impl ScanTracker {
    /// Creates a scan over the given `(server, registers)` groups; servers
    /// with no registers count as completed immediately.
    pub fn new<I>(threshold: usize, groups: I) -> Self
    where
        I: IntoIterator<Item = (ServerId, Vec<ObjectId>)>,
    {
        let mut outstanding = BTreeMap::new();
        let mut completed = BTreeSet::new();
        for (server, registers) in groups {
            if registers.is_empty() {
                completed.insert(server);
            } else {
                outstanding.insert(server, registers.into_iter().collect());
            }
        }
        ScanTracker {
            threshold,
            outstanding,
            completed,
            best: Value::INITIAL,
            values: Vec::new(),
        }
    }

    /// Records a read response of `value` from `register` on `server`.
    pub fn record(&mut self, server: ServerId, register: ObjectId, value: Value) {
        self.best = self.best.max(value);
        self.values.push(value);
        if let Some(waiting) = self.outstanding.get_mut(&server) {
            waiting.remove(&register);
            if waiting.is_empty() {
                self.outstanding.remove(&server);
                self.completed.insert(server);
            }
        }
    }

    /// Returns `true` once enough servers completed their scans.
    pub fn satisfied(&self) -> bool {
        self.completed.len() >= self.threshold
    }

    /// Number of servers whose scan completed.
    pub fn completed_count(&self) -> usize {
        self.completed.len()
    }

    /// The maximum value observed so far (over *all* responses, including
    /// those from servers whose scan is still incomplete).
    pub fn best(&self) -> Value {
        self.best
    }

    /// The maximum value observed, restricted to nothing — alias of
    /// [`ScanTracker::best`] kept for readability at call sites that follow
    /// the paper's `max(rdSet)` notation.
    pub fn max_of_read_set(&self) -> Value {
        self.best
    }

    /// All values collected so far (the `rdSet` of Algorithm 2).
    pub fn read_set(&self) -> &[Value] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_quorum_tracks_threshold_and_max() {
        let mut q = ServerQuorumTracker::new(2);
        assert!(!q.satisfied());
        q.record(ServerId::new(0), Some(Value::new(1, 5)));
        q.record(ServerId::new(0), Some(Value::new(9, 9))); // duplicate server
        assert_eq!(q.completed_count(), 1);
        assert!(!q.satisfied());
        q.record(ServerId::new(2), None);
        assert!(q.satisfied());
        assert_eq!(q.best(), Value::new(9, 9));
        assert!(q.completed().contains(&ServerId::new(2)));
    }

    #[test]
    fn register_quorum_counts_distinct_registers() {
        let mut q = RegisterQuorumTracker::new(3);
        q.record(ObjectId::new(0));
        q.record(ObjectId::new(0));
        q.record(ObjectId::new(1));
        assert_eq!(q.acked_count(), 2);
        assert!(!q.satisfied());
        q.record(ObjectId::new(2));
        assert!(q.satisfied());
        assert!(q.acked().contains(&ObjectId::new(2)));
    }

    #[test]
    fn scan_completes_servers_only_when_all_registers_answered() {
        let groups = vec![
            (ServerId::new(0), vec![ObjectId::new(0), ObjectId::new(1)]),
            (ServerId::new(1), vec![ObjectId::new(2)]),
            (ServerId::new(2), vec![]),
        ];
        let mut scan = ScanTracker::new(2, groups);
        // The empty server counts immediately.
        assert_eq!(scan.completed_count(), 1);
        assert!(!scan.satisfied());
        scan.record(ServerId::new(0), ObjectId::new(0), Value::new(3, 1));
        assert_eq!(scan.completed_count(), 1);
        scan.record(ServerId::new(0), ObjectId::new(1), Value::new(1, 7));
        assert_eq!(scan.completed_count(), 2);
        assert!(scan.satisfied());
        assert_eq!(scan.best(), Value::new(3, 1));
        assert_eq!(scan.max_of_read_set(), Value::new(3, 1));
        assert_eq!(scan.read_set().len(), 2);
        // Late responses from other servers still fold into the maximum.
        scan.record(ServerId::new(1), ObjectId::new(2), Value::new(8, 0));
        assert_eq!(scan.best(), Value::new(8, 0));
        assert_eq!(scan.completed_count(), 3);
    }

    #[test]
    fn zero_threshold_is_immediately_satisfied() {
        let scan = ScanTracker::new(0, Vec::<(ServerId, Vec<ObjectId>)>::new());
        assert!(scan.satisfied());
        let q = ServerQuorumTracker::new(0);
        assert!(q.satisfied());
    }
}
