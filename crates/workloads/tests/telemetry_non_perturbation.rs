//! The non-perturbation contract at campaign scale: enabling telemetry
//! must leave every deterministic artifact byte-identical — merged sweep,
//! frontier and fuzz campaign reports, across different shard counts.
//!
//! Telemetry is observation-only: simulators tally into `regemu-obs`
//! counters only when `regemu_obs::enabled()` was set at construction, and
//! nothing in a deterministic path ever reads a counter back. These tests
//! run each campaign twice — telemetry off with one shard, telemetry on
//! with four — and demand byte equality of the merged artifacts. Because
//! the contract is "telemetry can never matter", the assertions stay valid
//! even if another test toggles the global flag mid-run.

use regemu_bounds::Params;
use regemu_workloads::campaign::{run_campaign, CampaignOptions};
use regemu_workloads::frontier::{run_frontier_campaign, FrontierConfig};
use regemu_workloads::fuzz::{
    run_fuzz_campaign, FuzzCampaignConfig, FuzzCampaignOptions, FuzzConfig,
};
use regemu_workloads::sweep::SweepConfig;
use std::path::PathBuf;

fn tmp_spool(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("regemu-obs-perturb-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn with_telemetry<T>(on: bool, run: impl FnOnce() -> T) -> T {
    let was = regemu_obs::enabled();
    regemu_obs::set_enabled(on);
    let out = run();
    regemu_obs::set_enabled(was);
    out
}

fn options(spool: PathBuf, shards: usize) -> CampaignOptions {
    let mut options = CampaignOptions::new(spool);
    options.shards = shards;
    options.worker_threads = 1;
    options.quiet = true;
    options
}

#[test]
fn sweep_campaign_merges_are_byte_identical_with_telemetry_on() {
    let mut config = SweepConfig::quick();
    config.seeds = vec![7];

    let spool_off = tmp_spool("sweep-off");
    let off = with_telemetry(false, || {
        run_campaign(&config, &options(spool_off.clone(), 1)).unwrap()
    });
    let spool_on = tmp_spool("sweep-on");
    let on = with_telemetry(true, || {
        run_campaign(&config, &options(spool_on.clone(), 4)).unwrap()
    });

    let off = off.report.expect("campaign completed");
    let on = on.report.expect("campaign completed");
    assert_eq!(off.to_json(), on.to_json());
    assert_eq!(off.to_csv(), on.to_csv());
    std::fs::remove_dir_all(&spool_off).ok();
    std::fs::remove_dir_all(&spool_on).ok();
}

#[test]
fn frontier_campaign_reports_are_byte_identical_with_telemetry_on() {
    let mut config = FrontierConfig::quick();
    config.grid.truncate(2);
    config.seeds = vec![1];
    config.threads = 1;

    let spool_off = tmp_spool("frontier-off");
    let off = with_telemetry(false, || {
        run_frontier_campaign(&config, &options(spool_off.clone(), 1)).unwrap()
    });
    let spool_on = tmp_spool("frontier-on");
    let on = with_telemetry(true, || {
        run_frontier_campaign(&config, &options(spool_on.clone(), 4)).unwrap()
    });

    let off = off.expect("campaign completed");
    let on = on.expect("campaign completed");
    assert_eq!(off.to_json(), on.to_json());
    assert_eq!(off.to_text(), on.to_text());
    assert_eq!(off.to_csv(), on.to_csv());
    std::fs::remove_dir_all(&spool_off).ok();
    std::fs::remove_dir_all(&spool_on).ok();
}

#[test]
fn fuzz_campaign_merges_are_byte_identical_with_telemetry_on() {
    let config = FuzzCampaignConfig::new(FuzzConfig::new(Params::new(1, 1, 3).unwrap()).budget(48))
        .streams(4)
        .generations(2);

    let run = |spool: PathBuf, shards: usize| {
        let mut options = FuzzCampaignOptions::new(spool);
        options.shards = shards;
        options.quiet = true;
        run_fuzz_campaign(&config, &options).unwrap()
    };

    let spool_off = tmp_spool("fuzz-off");
    let off = with_telemetry(false, || run(spool_off.clone(), 1));
    let spool_on = tmp_spool("fuzz-on");
    let on = with_telemetry(true, || run(spool_on.clone(), 4));

    let off = off.report.expect("campaign completed");
    let on = on.report.expect("campaign completed");
    assert_eq!(off.to_text(), on.to_text());
    assert_eq!(off.failures_text(), on.failures_text());
    std::fs::remove_dir_all(&spool_off).ok();
    std::fs::remove_dir_all(&spool_on).ok();
}
