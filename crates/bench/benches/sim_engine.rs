//! Criterion bench: raw throughput of the fault-prone shared-memory
//! simulation engine (trigger + deliver cycles), so regressions in the
//! substrate are visible independently of the emulation algorithms.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use regemu_fpsm::prelude::*;

/// A client that keeps one read outstanding against each register and
/// completes after a fixed number of acknowledgements.
struct FanoutClient {
    targets: Vec<ObjectId>,
    remaining: usize,
}

impl ClientProtocol for FanoutClient {
    fn on_invoke(&mut self, _op: HighOp, ctx: &mut Context<'_>) {
        for b in &self.targets {
            ctx.trigger(*b, BaseOp::Read);
        }
    }

    fn on_response(&mut self, _delivery: Delivery, ctx: &mut Context<'_>) {
        self.remaining = self.remaining.saturating_sub(1);
        if self.remaining == 0 && !ctx.has_completed() {
            ctx.complete(HighResponse::ReadValue(0));
        }
    }
}

fn build(servers: usize) -> Simulation {
    let mut topology = Topology::new(servers);
    topology.add_object_per_server(ObjectKind::Register);
    Simulation::new(topology, SimConfig::unchecked())
}

fn bench_invoke_deliver_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_engine/invoke_deliver_cycle");
    for servers in [3usize, 9, 27] {
        group.bench_with_input(
            BenchmarkId::from_parameter(servers),
            &servers,
            |b, &servers| {
                b.iter_batched(
                    || {
                        let mut sim = build(servers);
                        let targets: Vec<ObjectId> = sim.topology().objects().collect();
                        let client = sim.register_client(Box::new(FanoutClient {
                            targets,
                            remaining: servers,
                        }));
                        (sim, client)
                    },
                    |(mut sim, client)| {
                        let op = sim.invoke(client, HighOp::Read).unwrap();
                        let pending: Vec<OpId> = sim.pending_ops().map(|p| p.op_id).collect();
                        for op_id in pending {
                            sim.deliver(op_id).unwrap();
                        }
                        assert!(sim.result_of(op).is_some());
                    },
                    BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

fn bench_fair_driver_quiescence(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_engine/fair_driver_quiescence");
    for servers in [5usize, 25] {
        group.bench_with_input(
            BenchmarkId::from_parameter(servers),
            &servers,
            |b, &servers| {
                b.iter_batched(
                    || {
                        let mut sim = build(servers);
                        let targets: Vec<ObjectId> = sim.topology().objects().collect();
                        let client = sim.register_client(Box::new(FanoutClient {
                            targets,
                            remaining: servers,
                        }));
                        sim.invoke(client, HighOp::Read).unwrap();
                        (sim, FairDriver::new(7))
                    },
                    |(mut sim, mut driver)| {
                        driver.run_until_quiescent(&mut sim, 10_000).unwrap();
                    },
                    BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_invoke_deliver_cycle,
    bench_fair_driver_quiescence
);
criterion_main!(benches);
