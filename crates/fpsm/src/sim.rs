//! The simulation engine for asynchronous fault-prone shared memory.
//!
//! [`Simulation`] executes runs of an emulation algorithm under *explicit*
//! environment control: nothing happens unless the caller (a driver or an
//! adversary) asks for it. The primitive transitions are:
//!
//! * [`Simulation::invoke`] — a client invokes a high-level operation; its
//!   protocol state machine runs and may trigger low-level operations.
//! * [`Simulation::deliver`] — a pending low-level operation takes effect on
//!   its (atomic) base object **and** responds to the client, in one step.
//!   This realizes Assumption 1 (Write Linearization): a write linearizes at
//!   its respond step, so a pending write has no effect until it is delivered.
//! * [`Simulation::drop_pending`] — a pending low-level operation is discarded
//!   without ever taking effect (e.g. a message lost because its sender
//!   crashed). The environment is free to choose between delivering and
//!   dropping, exactly as in the paper's model.
//! * [`Simulation::crash_server`] / [`Simulation::crash_client`] — crash
//!   faults; crashing a server crashes every base object mapped to it.
//!
//! Fair schedules, crash plans and the lower-bound adversary `Ad_i` are all
//! implemented *on top of* this interface (see [`crate::driver`] and the
//! `regemu-adversary` crate).

use crate::client::{ClientProtocol, Delivery};
use crate::error::SimError;
use crate::event::Event;
use crate::history::{History, RecordingMode};
use crate::ids::{ClientId, HighOpId, ObjectId, OpId, ServerId, Time};
use crate::node::{ClientEffects, ClientNode};
use crate::object::BaseObject;
use crate::op::{BaseOp, BaseResponse, HighOp, HighResponse};
use crate::telemetry::SimTelemetry;
use crate::topology::Topology;
use std::collections::VecDeque;

/// Static configuration of a simulation.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Failure threshold `f`. When set, [`Simulation::crash_server`] refuses
    /// to crash more than `f` servers, which keeps runs inside the fault model
    /// the emulation was designed for. Use [`SimConfig::unchecked`] to lift
    /// the restriction (e.g. for impossibility demonstrations).
    pub fault_threshold: Option<usize>,
}

impl SimConfig {
    /// Configuration enforcing the failure threshold `f`.
    pub fn with_fault_threshold(f: usize) -> Self {
        SimConfig {
            fault_threshold: Some(f),
        }
    }

    /// Configuration without a failure-threshold check.
    pub fn unchecked() -> Self {
        SimConfig {
            fault_threshold: None,
        }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::unchecked()
    }
}

/// A low-level operation that has been triggered but has not yet responded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PendingOp {
    /// Identifier of the operation.
    pub op_id: OpId,
    /// Client that triggered it.
    pub client: ClientId,
    /// High-level operation on whose behalf it was triggered (if any).
    pub high_op: Option<HighOpId>,
    /// Target base object.
    pub object: ObjectId,
    /// Server hosting the target object.
    pub server: ServerId,
    /// The operation itself.
    pub op: BaseOp,
    /// Time at which it was triggered.
    pub triggered_at: Time,
}

impl PendingOp {
    /// Returns `true` if this pending operation is a *covering write*: a
    /// write-class operation that may still take effect and overwrite the
    /// object at any later time.
    pub fn is_covering_write(&self) -> bool {
        self.op.is_write()
    }
}

/// Result of delivering a pending low-level operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeliveryOutcome {
    /// The response the base object produced.
    pub response: BaseResponse,
    /// Set when delivering this response caused the client's current
    /// high-level operation to return.
    pub completed_high_op: Option<(HighOpId, HighResponse)>,
    /// `false` when the triggering client had crashed: the operation still
    /// took effect on the object, but no response was delivered to anyone.
    pub notified_client: bool,
}

/// Dense, `OpId`-ordered store of the pending low-level operations.
///
/// Op ids are allocated monotonically (ids are indices), so the slab is a
/// sliding window over the id space: deque slot `i` holds the operation with
/// id `base + i`. Insertion is a `push_back`, lookup and removal are O(1)
/// index arithmetic, and slots drained at either end are popped so the
/// memory footprint stays proportional to the live id *span* (oldest pending
/// to newest), not to the number of ids ever allocated. Iteration visits
/// operations in ascending id order — the same order the previous
/// `BTreeMap<OpId, PendingOp>` representation produced, which keeps seeded
/// drivers byte-identical.
#[derive(Debug, Default)]
struct PendingSlab {
    /// Op id corresponding to deque slot 0.
    base: u64,
    slots: VecDeque<Option<PendingOp>>,
    live: usize,
}

impl PendingSlab {
    fn len(&self) -> usize {
        self.live
    }

    fn get(&self, op_id: OpId) -> Option<&PendingOp> {
        let idx = op_id.index().checked_sub(self.base)?;
        self.slots.get(idx as usize)?.as_ref()
    }

    fn insert(&mut self, op: PendingOp) {
        let id = op.op_id.index();
        if self.slots.is_empty() {
            self.base = id;
        }
        debug_assert!(
            id >= self.base + self.slots.len() as u64,
            "op ids must be inserted in allocation order"
        );
        while self.base + (self.slots.len() as u64) < id {
            self.slots.push_back(None);
        }
        self.slots.push_back(Some(op));
        self.live += 1;
    }

    fn remove(&mut self, op_id: OpId) -> Option<PendingOp> {
        let idx = op_id.index().checked_sub(self.base)? as usize;
        let op = self.slots.get_mut(idx)?.take()?;
        self.live -= 1;
        while let Some(None) = self.slots.front() {
            self.slots.pop_front();
            self.base += 1;
        }
        while let Some(None) = self.slots.back() {
            self.slots.pop_back();
        }
        Some(op)
    }

    /// Iterates over the pending operations in ascending id order.
    fn iter(&self) -> impl Iterator<Item = &PendingOp> {
        self.slots.iter().flatten()
    }
}

/// One scheduler decision, recorded at delivery time.
///
/// When decision tracing is enabled ([`Simulation::enable_decision_trace`]),
/// every [`Simulation::deliver`] call records which of the currently
/// deliverable operations was chosen: `choice` is the rank of the delivered
/// operation among [`Simulation::deliverable_ops`] (ascending op-id order)
/// and `candidates` is how many deliverable operations there were. The
/// resulting stream is a scheduler-independent encoding of the interleaving —
/// replaying the same ranks against the same scenario reproduces the run
/// exactly, whichever scheduler originally produced it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecisionRecord {
    /// Simulation time immediately before the delivery.
    pub time: Time,
    /// Rank of the delivered operation among the deliverable ones.
    pub choice: u32,
    /// Number of deliverable operations at that moment.
    pub candidates: u32,
}

/// The simulation of an asynchronous fault-prone shared-memory system.
///
/// Per-client state lives in [`ClientNode`] — the same deployable unit a
/// live client process hosts (see [`crate::node`]) — so the simulated and
/// served executions run literally the same state-machine code.
pub struct Simulation {
    topology: Topology,
    config: SimConfig,
    objects: Vec<BaseObject>,
    server_crashed: Vec<bool>,
    clients: Vec<ClientNode>,
    pending: PendingSlab,
    /// Response of each high-level operation, indexed by `HighOpId` (ids are
    /// allocated densely, so the arena is append-only: a slot is pushed at
    /// invocation and filled in at return).
    high_results: Vec<Option<HighResponse>>,
    /// Running count of filled `high_results` slots.
    completed_high: usize,
    history: History,
    time: Time,
    next_op_id: u64,
    /// Per-delivery scheduler decisions; recorded only when enabled.
    decision_trace: Option<Vec<DecisionRecord>>,
    /// Number of pending *covering writes* per object (`cover_counts[b] > 0`
    /// iff `b ∈ Cov(now)`), maintained incrementally at every pending-set
    /// mutation so coverage peaks cost O(1) per step instead of a scan.
    cover_counts: Vec<usize>,
    /// Number of currently covered objects, `|Cov(now)|`.
    covered_now: usize,
    /// Per-server count of currently covered objects.
    covered_per_server_now: Vec<usize>,
    /// Maximum of `covered_now` over the whole run (`max_t |Cov(t)|`).
    peak_covered: usize,
    /// Maximum, over the whole run, of the covered-object count of any
    /// single server (`max_t max_s |Cov(t) ∩ objects(s)|`, Theorem 6's
    /// per-server quantity under adversarial pressure).
    peak_covered_on_one_server: usize,
    /// Maximum number of simultaneously pending low-level operations.
    peak_pending: usize,
    /// Sampled telemetry hook, attached at construction only when
    /// [`regemu_obs::enabled`] is on. Observation-only: nothing in the
    /// simulator reads it back, so behaviour — and every deterministic
    /// artifact — is byte-identical with telemetry on or off (the
    /// non-perturbation contract, see [`crate::telemetry`]).
    telemetry: Option<SimTelemetry>,
}

impl Simulation {
    /// Creates a simulation for the given topology.
    pub fn new(topology: Topology, config: SimConfig) -> Self {
        let objects: Vec<BaseObject> = topology
            .objects()
            .map(|id| BaseObject::new(id, topology.server_of(id), topology.kind_of(id)))
            .collect();
        let server_crashed = vec![false; topology.server_count()];
        let cover_counts = vec![0; objects.len()];
        let covered_per_server_now = vec![0; topology.server_count()];
        Simulation {
            topology,
            config,
            objects,
            server_crashed,
            clients: Vec::new(),
            pending: PendingSlab::default(),
            high_results: Vec::new(),
            completed_high: 0,
            history: History::new(),
            time: 0,
            next_op_id: 0,
            decision_trace: None,
            cover_counts,
            covered_now: 0,
            covered_per_server_now,
            peak_covered: 0,
            peak_covered_on_one_server: 0,
            peak_pending: 0,
            telemetry: regemu_obs::enabled().then(SimTelemetry::attached),
        }
    }

    /// Starts recording one [`DecisionRecord`] per delivery.
    ///
    /// Off by default: ranking the chosen operation costs a scan of the
    /// pending set on every delivery, which ordinary runs should not pay.
    /// Enabling mid-run records from the next delivery onward.
    pub fn enable_decision_trace(&mut self) {
        if self.decision_trace.is_none() {
            self.decision_trace = Some(Vec::new());
        }
    }

    /// The scheduler decisions recorded so far (empty when tracing is off).
    pub fn decision_trace(&self) -> &[DecisionRecord] {
        self.decision_trace.as_deref().unwrap_or(&[])
    }

    /// The topology this simulation runs over.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The configuration of the simulation.
    pub fn config(&self) -> SimConfig {
        self.config
    }

    /// Current logical time (number of steps executed so far).
    pub fn time(&self) -> Time {
        self.time
    }

    /// The recorded history of the run so far.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// The active [`RecordingMode`] of the history.
    pub fn recording_mode(&self) -> RecordingMode {
        self.history.recording_mode()
    }

    /// Switches how much of the event stream the history retains (see
    /// [`RecordingMode`]). Retention is the only thing that changes: the
    /// digests, and therefore the run's behaviour and metrics, are identical
    /// in every mode. Typically called right after construction, before any
    /// events are recorded.
    pub fn set_recording_mode(&mut self, mode: RecordingMode) {
        self.history.set_recording_mode(mode);
    }

    /// Evicts a completed high-level interval from the history's digest
    /// (see [`History::evict_interval`]). Used by run engines that verify
    /// the run online and no longer need the folded operation for the
    /// report surface — together with a bounded [`RecordingMode`] this
    /// keeps the whole recording footprint proportional to the run's point
    /// contention instead of its length.
    pub fn evict_interval(&mut self, high_op: HighOpId) -> bool {
        self.history.evict_interval(high_op)
    }

    /// Registers a new client running the given protocol and returns its id.
    pub fn register_client(&mut self, protocol: Box<dyn ClientProtocol>) -> ClientId {
        let id = ClientId::new(self.clients.len());
        self.clients.push(ClientNode::new(id, protocol));
        id
    }

    /// Number of registered clients.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    // ----- introspection ---------------------------------------------------

    /// Returns the base object with the given id.
    pub fn object(&self, id: ObjectId) -> Result<&BaseObject, SimError> {
        self.objects
            .get(id.index())
            .ok_or(SimError::UnknownObject(id))
    }

    /// Returns `true` if the server has crashed.
    pub fn is_server_crashed(&self, server: ServerId) -> bool {
        self.server_crashed
            .get(server.index())
            .copied()
            .unwrap_or(false)
    }

    /// Returns `true` if the client has crashed.
    pub fn is_client_crashed(&self, client: ClientId) -> bool {
        self.clients
            .get(client.index())
            .map(|c| c.is_crashed())
            .unwrap_or(false)
    }

    /// Number of servers crashed so far.
    pub fn crashed_server_count(&self) -> usize {
        self.server_crashed.iter().filter(|c| **c).count()
    }

    /// Returns `true` if the client has no high-level operation in progress
    /// and has not crashed.
    pub fn is_client_idle(&self, client: ClientId) -> bool {
        self.clients
            .get(client.index())
            .map(|c| c.is_idle())
            .unwrap_or(false)
    }

    /// The high-level operation currently in progress at `client`, if any.
    pub fn current_high_op(&self, client: ClientId) -> Option<(HighOpId, HighOp)> {
        self.clients.get(client.index()).and_then(|c| c.current())
    }

    /// Returns the response of a completed high-level operation, if it has
    /// completed. O(1): responses live in a dense arena indexed by the id.
    pub fn result_of(&self, high_op: HighOpId) -> Option<HighResponse> {
        self.high_results
            .get(high_op.index() as usize)
            .copied()
            .flatten()
    }

    /// All completed high-level operations of `client`, in completion order.
    pub fn completed_ops(&self, client: ClientId) -> &[(HighOpId, HighOp, HighResponse)] {
        self.clients
            .get(client.index())
            .map(|c| c.completed())
            .unwrap_or(&[])
    }

    /// Iterator over all pending low-level operations, in ascending id order.
    pub fn pending_ops(&self) -> impl Iterator<Item = &PendingOp> {
        self.pending.iter()
    }

    /// Number of pending low-level operations.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// The pending operation with the given id, if any.
    pub fn pending_op(&self, op_id: OpId) -> Option<&PendingOp> {
        self.pending.get(op_id)
    }

    /// Pending operations that can still be delivered (their server has not
    /// crashed).
    pub fn deliverable_ops(&self) -> impl Iterator<Item = &PendingOp> {
        self.pending
            .iter()
            .filter(move |p| !self.is_server_crashed(p.server))
    }

    /// An owned snapshot of the pending low-level operations, in ascending id
    /// order.
    ///
    /// O(pending): the live pending set is materialized directly from the
    /// simulation's slab. Checkers and drivers that need "what is in flight
    /// right now" should call this instead of re-deriving the set from the
    /// event log via [`crate::history::History::pending_low_level`], which is
    /// O(events).
    pub fn pending_snapshot(&self) -> Vec<PendingOp> {
        self.pending.iter().copied().collect()
    }

    /// Number of currently covered base objects, `|Cov(now)|` — objects with
    /// at least one pending covering write. O(1): maintained incrementally.
    pub fn covered_count_now(&self) -> usize {
        self.covered_now
    }

    /// Peak number of covered base objects over the whole run so far,
    /// `max_t |Cov(t)|`. Unlike the end-of-run snapshot, this captures
    /// coverage the schedule built up and later released.
    pub fn peak_covered_count(&self) -> usize {
        self.peak_covered
    }

    /// Peak number of covered objects on any *single* server over the run so
    /// far — the per-server occupancy pressure of Theorem 6.
    pub fn peak_covered_on_one_server(&self) -> usize {
        self.peak_covered_on_one_server
    }

    /// Peak number of simultaneously pending low-level operations over the
    /// run so far.
    pub fn peak_pending_count(&self) -> usize {
        self.peak_pending
    }

    /// Number of high-level operations invoked so far (completed or not).
    pub fn invoked_high_count(&self) -> usize {
        self.high_results.len()
    }

    /// Number of high-level operations that have completed so far. O(1):
    /// maintained incrementally, never derived by scanning.
    pub fn completed_high_count(&self) -> usize {
        self.completed_high
    }

    // ----- transitions -----------------------------------------------------

    /// Invokes a high-level operation at `client`.
    ///
    /// # Errors
    ///
    /// Fails if the client is unknown, crashed, or already has a high-level
    /// operation in progress (per-client schedules must be sequential).
    pub fn invoke(&mut self, client: ClientId, op: HighOp) -> Result<HighOpId, SimError> {
        let node = self
            .clients
            .get(client.index())
            .ok_or(SimError::UnknownClient(client))?;
        if node.is_crashed() {
            return Err(SimError::ClientCrashed(client));
        }
        if node.current().is_some() {
            return Err(SimError::ClientBusy(client));
        }

        let high_op = HighOpId::new(self.high_results.len() as u64);
        self.high_results.push(None);
        self.time += 1;
        self.history.push(Event::Invoke {
            time: self.time,
            client,
            high_op,
            op,
        });
        let effects =
            self.clients[client.index()].on_invoke(high_op, op, self.time, &mut self.next_op_id);
        self.apply_effects(client, Some(high_op), effects);
        if let Some(t) = self.telemetry.as_mut() {
            t.note_invoke(self.time, self.pending.len());
        }
        Ok(high_op)
    }

    /// Delivers the pending low-level operation `op_id`: the operation takes
    /// effect on its base object and the response is handed to the client's
    /// protocol (unless the client crashed).
    ///
    /// # Errors
    ///
    /// Fails if the operation is not pending or its server has crashed.
    pub fn deliver(&mut self, op_id: OpId) -> Result<DeliveryOutcome, SimError> {
        let pending = *self.pending.get(op_id).ok_or(SimError::UnknownOp(op_id))?;
        if self.is_server_crashed(pending.server) {
            return Err(SimError::ServerCrashed(pending.server));
        }
        if self.decision_trace.is_some() {
            let mut choice = 0u32;
            let mut candidates = 0u32;
            for p in self.deliverable_ops() {
                if p.op_id < op_id {
                    choice += 1;
                }
                candidates += 1;
            }
            let record = DecisionRecord {
                time: self.time,
                choice,
                candidates,
            };
            self.decision_trace
                .as_mut()
                .expect("checked above")
                .push(record);
        }
        // Apply to the object: this is the operation's linearization point.
        let response = self.objects[pending.object.index()].apply(&pending.op)?;
        self.pending.remove(op_id);
        self.note_pending_removed(&pending);
        self.time += 1;
        self.history.push(Event::Respond {
            time: self.time,
            client: pending.client,
            op_id,
            object: pending.object,
            response,
        });

        let client_crashed = self.is_client_crashed(pending.client);
        if client_crashed {
            if let Some(t) = self.telemetry.as_mut() {
                t.note_delivery(self.time, self.pending.len());
            }
            return Ok(DeliveryOutcome {
                response,
                completed_high_op: None,
                notified_client: false,
            });
        }

        let delivery = Delivery {
            op_id,
            object: pending.object,
            server: pending.server,
            op: pending.op,
            response,
        };
        let client = pending.client;
        let current_high = self.clients[client.index()].current().map(|(id, _)| id);
        let effects =
            self.clients[client.index()].on_delivery(delivery, self.time, &mut self.next_op_id);
        let completed = self.apply_effects(client, current_high, effects);
        if let Some(t) = self.telemetry.as_mut() {
            t.note_delivery(self.time, self.pending.len());
        }
        Ok(DeliveryOutcome {
            response,
            completed_high_op: completed,
            notified_client: true,
        })
    }

    /// Discards a pending low-level operation without applying it.
    ///
    /// Models an operation that never takes effect (for instance because the
    /// message carrying it was lost when its sender crashed). The environment
    /// may choose freely between [`Simulation::deliver`] and this.
    ///
    /// # Errors
    ///
    /// Fails if the operation is not pending.
    pub fn drop_pending(&mut self, op_id: OpId) -> Result<PendingOp, SimError> {
        let op = self
            .pending
            .remove(op_id)
            .ok_or(SimError::UnknownOp(op_id))?;
        self.note_pending_removed(&op);
        if let Some(t) = self.telemetry.as_mut() {
            t.note_drop(self.time, self.pending.len());
        }
        Ok(op)
    }

    /// Crashes a server, crashing every base object mapped to it.
    ///
    /// # Errors
    ///
    /// Fails if the server is unknown or crashing it would exceed the
    /// configured failure threshold.
    pub fn crash_server(&mut self, server: ServerId) -> Result<(), SimError> {
        if server.index() >= self.topology.server_count() {
            return Err(SimError::UnknownServer(server));
        }
        if self.server_crashed[server.index()] {
            return Ok(());
        }
        if let Some(f) = self.config.fault_threshold {
            let crashed = self.crashed_server_count();
            if crashed >= f {
                return Err(SimError::FaultBudgetExceeded {
                    f,
                    already_crashed: crashed,
                });
            }
        }
        self.server_crashed[server.index()] = true;
        for obj in self.topology.objects_on(server) {
            self.objects[obj.index()].crash();
        }
        self.time += 1;
        self.history.push(Event::ServerCrash {
            time: self.time,
            server,
        });
        if let Some(t) = self.telemetry.as_mut() {
            t.note_crash(self.time, self.pending.len());
        }
        Ok(())
    }

    /// Crashes a client. Its pending low-level operations remain pending; the
    /// environment decides whether they ever take effect.
    ///
    /// # Errors
    ///
    /// Fails if the client is unknown.
    pub fn crash_client(&mut self, client: ClientId) -> Result<(), SimError> {
        if client.index() >= self.clients.len() {
            return Err(SimError::UnknownClient(client));
        }
        if self.clients[client.index()].is_crashed() {
            return Ok(());
        }
        self.clients[client.index()].crash();
        self.time += 1;
        self.history.push(Event::ClientCrash {
            time: self.time,
            client,
        });
        if let Some(t) = self.telemetry.as_mut() {
            t.note_crash(self.time, self.pending.len());
        }
        Ok(())
    }

    // ----- internals -------------------------------------------------------

    /// Updates the incremental coverage/pending accounting after `op` was
    /// inserted into the pending set.
    fn note_pending_inserted(&mut self, op: &PendingOp) {
        self.peak_pending = self.peak_pending.max(self.pending.len());
        if !op.is_covering_write() {
            return;
        }
        let obj = op.object.index();
        self.cover_counts[obj] += 1;
        if self.cover_counts[obj] == 1 {
            self.covered_now += 1;
            self.peak_covered = self.peak_covered.max(self.covered_now);
            let server = op.server.index();
            self.covered_per_server_now[server] += 1;
            self.peak_covered_on_one_server = self
                .peak_covered_on_one_server
                .max(self.covered_per_server_now[server]);
        }
    }

    /// Updates the incremental coverage accounting after `op` left the
    /// pending set (delivered or dropped).
    fn note_pending_removed(&mut self, op: &PendingOp) {
        if !op.is_covering_write() {
            return;
        }
        let obj = op.object.index();
        self.cover_counts[obj] -= 1;
        if self.cover_counts[obj] == 0 {
            self.covered_now -= 1;
            self.covered_per_server_now[op.server.index()] -= 1;
        }
    }

    fn apply_effects(
        &mut self,
        client: ClientId,
        high_op: Option<HighOpId>,
        effects: ClientEffects,
    ) -> Option<(HighOpId, HighResponse)> {
        let ClientEffects {
            triggers,
            completion,
        } = effects;
        for (op_id, object, op) in triggers {
            let server = self.topology.server_of(object);
            debug_assert!(
                self.topology.kind_of(object).supports(&op),
                "protocol {} triggered {} on a {}",
                self.clients[client.index()].protocol_name(),
                op,
                self.topology.kind_of(object),
            );
            self.time += 1;
            self.history.push(Event::Trigger {
                time: self.time,
                client,
                high_op,
                op_id,
                object,
                op,
            });
            let pending = PendingOp {
                op_id,
                client,
                high_op,
                object,
                server,
                op,
                triggered_at: self.time,
            };
            self.pending.insert(pending);
            self.note_pending_inserted(&pending);
        }
        if let Some(response) = completion {
            let (high_id, _op) = self.clients[client.index()].finish(response);
            self.time += 1;
            self.history.push(Event::Return {
                time: self.time,
                client,
                high_op: high_id,
                response,
            });
            self.high_results[high_id.index() as usize] = Some(response);
            self.completed_high += 1;
            Some((high_id, response))
        } else {
            None
        }
    }
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("time", &self.time)
            .field("servers", &self.topology.server_count())
            .field("objects", &self.topology.object_count())
            .field("clients", &self.clients.len())
            .field("pending", &self.pending.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{Context, NoopProtocol};
    use crate::object::ObjectKind;
    use crate::value::Value;

    /// A protocol that writes to a fixed register and returns after the ack,
    /// and reads from it and returns the payload.
    struct SingleRegisterClient {
        target: ObjectId,
    }

    impl ClientProtocol for SingleRegisterClient {
        fn on_invoke(&mut self, op: HighOp, ctx: &mut Context<'_>) {
            match op {
                HighOp::Write(v) => {
                    ctx.trigger(self.target, BaseOp::Write(Value::new(1, v)));
                }
                HighOp::Read => {
                    ctx.trigger(self.target, BaseOp::Read);
                }
            }
        }

        fn on_response(&mut self, delivery: Delivery, ctx: &mut Context<'_>) {
            match delivery.response {
                BaseResponse::WriteAck => ctx.complete(HighResponse::WriteAck),
                BaseResponse::ReadValue(v) => ctx.complete(HighResponse::ReadValue(v.val)),
                _ => unreachable!(),
            }
        }

        fn name(&self) -> &'static str {
            "single-register"
        }
    }

    fn simple_sim() -> (Simulation, ObjectId) {
        let mut t = Topology::new(1);
        let b = t.add_object(ObjectKind::Register, ServerId::new(0));
        (Simulation::new(t, SimConfig::unchecked()), b)
    }

    #[test]
    fn invoke_deliver_complete_cycle() {
        let (mut sim, b) = simple_sim();
        let c = sim.register_client(Box::new(SingleRegisterClient { target: b }));
        let w = sim.invoke(c, HighOp::Write(42)).unwrap();
        assert!(sim.result_of(w).is_none());
        assert_eq!(sim.pending_count(), 1);
        let op_id = sim.pending_ops().next().unwrap().op_id;
        let outcome = sim.deliver(op_id).unwrap();
        assert!(outcome.notified_client);
        assert_eq!(outcome.completed_high_op, Some((w, HighResponse::WriteAck)));
        assert_eq!(sim.result_of(w), Some(HighResponse::WriteAck));
        assert_eq!(sim.pending_count(), 0);

        let r = sim.invoke(c, HighOp::Read).unwrap();
        let op_id = sim.pending_ops().next().unwrap().op_id;
        sim.deliver(op_id).unwrap();
        assert_eq!(sim.result_of(r), Some(HighResponse::ReadValue(42)));
    }

    #[test]
    fn pending_write_has_no_effect_until_delivered() {
        let (mut sim, b) = simple_sim();
        let c = sim.register_client(Box::new(SingleRegisterClient { target: b }));
        sim.invoke(c, HighOp::Write(7)).unwrap();
        // The write is pending: the object still holds the initial value.
        assert_eq!(sim.object(b).unwrap().value(), Value::INITIAL);
        let op_id = sim.pending_ops().next().unwrap().op_id;
        sim.deliver(op_id).unwrap();
        assert_eq!(sim.object(b).unwrap().value(), Value::new(1, 7));
    }

    #[test]
    fn dropped_ops_never_take_effect() {
        let (mut sim, b) = simple_sim();
        let c = sim.register_client(Box::new(SingleRegisterClient { target: b }));
        sim.invoke(c, HighOp::Write(7)).unwrap();
        let op_id = sim.pending_ops().next().unwrap().op_id;
        let dropped = sim.drop_pending(op_id).unwrap();
        assert!(dropped.is_covering_write());
        assert_eq!(sim.pending_count(), 0);
        assert_eq!(sim.object(b).unwrap().value(), Value::INITIAL);
        assert_eq!(sim.deliver(op_id).unwrap_err(), SimError::UnknownOp(op_id));
    }

    #[test]
    fn busy_and_crashed_clients_cannot_invoke() {
        let (mut sim, b) = simple_sim();
        let c = sim.register_client(Box::new(SingleRegisterClient { target: b }));
        sim.invoke(c, HighOp::Write(1)).unwrap();
        assert_eq!(
            sim.invoke(c, HighOp::Read).unwrap_err(),
            SimError::ClientBusy(c)
        );
        sim.crash_client(c).unwrap();
        assert_eq!(
            sim.invoke(c, HighOp::Read).unwrap_err(),
            SimError::ClientCrashed(c)
        );
        assert!(sim.is_client_crashed(c));
        assert!(!sim.is_client_idle(c));
    }

    #[test]
    fn crashed_server_blocks_delivery_and_crashes_objects() {
        let (mut sim, b) = simple_sim();
        let c = sim.register_client(Box::new(SingleRegisterClient { target: b }));
        sim.invoke(c, HighOp::Write(1)).unwrap();
        let op_id = sim.pending_ops().next().unwrap().op_id;
        sim.crash_server(ServerId::new(0)).unwrap();
        assert!(sim.is_server_crashed(ServerId::new(0)));
        assert!(sim.object(b).unwrap().is_crashed());
        assert_eq!(
            sim.deliver(op_id).unwrap_err(),
            SimError::ServerCrashed(ServerId::new(0))
        );
        assert_eq!(sim.deliverable_ops().count(), 0);
        assert_eq!(sim.pending_count(), 1);
    }

    #[test]
    fn fault_threshold_is_enforced() {
        let mut t = Topology::new(3);
        t.add_object_per_server(ObjectKind::Register);
        let mut sim = Simulation::new(t, SimConfig::with_fault_threshold(1));
        sim.crash_server(ServerId::new(0)).unwrap();
        // Re-crashing the same server is a no-op, not a second fault.
        sim.crash_server(ServerId::new(0)).unwrap();
        let err = sim.crash_server(ServerId::new(1)).unwrap_err();
        assert!(matches!(
            err,
            SimError::FaultBudgetExceeded {
                f: 1,
                already_crashed: 1
            }
        ));
        assert_eq!(sim.crashed_server_count(), 1);
    }

    #[test]
    fn delivery_to_crashed_client_still_applies_to_object() {
        let (mut sim, b) = simple_sim();
        let c = sim.register_client(Box::new(SingleRegisterClient { target: b }));
        let w = sim.invoke(c, HighOp::Write(9)).unwrap();
        let op_id = sim.pending_ops().next().unwrap().op_id;
        sim.crash_client(c).unwrap();
        let outcome = sim.deliver(op_id).unwrap();
        assert!(!outcome.notified_client);
        assert!(outcome.completed_high_op.is_none());
        // The write took effect even though nobody was notified.
        assert_eq!(sim.object(b).unwrap().value(), Value::new(1, 9));
        assert!(sim.result_of(w).is_none());
    }

    #[test]
    fn history_records_the_full_run() {
        let (mut sim, b) = simple_sim();
        let c = sim.register_client(Box::new(SingleRegisterClient { target: b }));
        let w = sim.invoke(c, HighOp::Write(3)).unwrap();
        let op_id = sim.pending_ops().next().unwrap().op_id;
        sim.deliver(op_id).unwrap();
        let h = sim.history();
        assert_eq!(h.high_intervals().len(), 1);
        assert!(h.high_intervals()[0].is_complete());
        assert_eq!(h.touched_objects().len(), 1);
        assert!(h.is_write_sequential());
        assert!(sim.result_of(w).is_some());
        assert!(sim.time() >= 4);
    }

    #[test]
    fn noop_protocol_returns_without_pending_ops() {
        let (mut sim, _b) = simple_sim();
        let c = sim.register_client(Box::new(NoopProtocol));
        let w = sim.invoke(c, HighOp::Write(1)).unwrap();
        assert_eq!(sim.result_of(w), Some(HighResponse::WriteAck));
        assert_eq!(sim.pending_count(), 0);
        assert!(sim.is_client_idle(c));
        assert_eq!(sim.completed_ops(c).len(), 1);
    }

    #[test]
    fn pending_slab_keeps_id_order_and_reclaims_drained_slots() {
        let mk = |id: u64| PendingOp {
            op_id: OpId::new(id),
            client: ClientId::new(0),
            high_op: None,
            object: ObjectId::new(0),
            server: ServerId::new(0),
            op: BaseOp::Read,
            triggered_at: id,
        };
        let mut slab = PendingSlab::default();
        for id in 0..8 {
            slab.insert(mk(id));
        }
        assert_eq!(slab.len(), 8);
        // Iteration is ascending-id, like the BTreeMap it replaced.
        let ids: Vec<u64> = slab.iter().map(|p| p.op_id.index()).collect();
        assert_eq!(ids, (0..8).collect::<Vec<_>>());

        // Remove a middle element: lookups and order are unaffected.
        assert!(slab.remove(OpId::new(3)).is_some());
        assert!(slab.get(OpId::new(3)).is_none());
        assert!(slab.remove(OpId::new(3)).is_none());
        let ids: Vec<u64> = slab.iter().map(|p| p.op_id.index()).collect();
        assert_eq!(ids, vec![0, 1, 2, 4, 5, 6, 7]);

        // Drain the front: the window slides and the deque shrinks.
        for id in [0, 1, 2, 4] {
            slab.remove(OpId::new(id));
        }
        assert_eq!(slab.base, 5);
        assert_eq!(slab.slots.len(), 3);
        assert_eq!(slab.len(), 3);

        // Drain everything, then insert a much later id: the window restarts
        // at that id instead of padding the gap.
        for id in 5..8 {
            slab.remove(OpId::new(id));
        }
        assert_eq!(slab.len(), 0);
        assert!(slab.slots.is_empty());
        slab.insert(mk(1000));
        assert_eq!(slab.base, 1000);
        assert_eq!(slab.slots.len(), 1);
        assert!(slab.get(OpId::new(1000)).is_some());
        assert!(slab.get(OpId::new(999)).is_none());
        assert!(slab.get(OpId::new(0)).is_none());
    }

    #[test]
    fn result_arena_tracks_every_high_op() {
        let (mut sim, b) = simple_sim();
        let c = sim.register_client(Box::new(SingleRegisterClient { target: b }));
        let mut ids = Vec::new();
        for i in 0..10 {
            let w = sim.invoke(c, HighOp::Write(i)).unwrap();
            let op_id = sim.pending_ops().next().unwrap().op_id;
            sim.deliver(op_id).unwrap();
            ids.push(w);
        }
        for w in &ids {
            assert_eq!(sim.result_of(*w), Some(HighResponse::WriteAck));
        }
        // Ids stay dense and an in-flight op has no result yet.
        let r = sim.invoke(c, HighOp::Read).unwrap();
        assert_eq!(r, HighOpId::new(10));
        assert_eq!(sim.result_of(r), None);
        assert_eq!(sim.result_of(HighOpId::new(99)), None);
    }

    #[test]
    fn pending_snapshot_matches_the_history_derived_set() {
        let mut t = Topology::new(3);
        let objs = t.add_object_per_server(ObjectKind::Register);
        let mut sim = Simulation::new(t, SimConfig::unchecked());
        for (i, obj) in objs.iter().enumerate() {
            let c = sim.register_client(Box::new(SingleRegisterClient { target: *obj }));
            sim.invoke(c, HighOp::Write(i as u64)).unwrap();
        }
        // Deliver one, leaving two pending.
        let first = sim.pending_ops().next().unwrap().op_id;
        sim.deliver(first).unwrap();

        let snapshot = sim.pending_snapshot();
        assert_eq!(snapshot.len(), sim.pending_count());
        // Ascending id order, and exactly the set the O(events) scan finds.
        let ids: Vec<_> = snapshot.iter().map(|p| p.op_id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
        let from_history: Vec<_> = sim.history().pending_low_level().into_iter().collect();
        assert_eq!(ids, from_history);
    }

    #[test]
    fn completion_counters_track_invoked_and_completed_ops() {
        let (mut sim, b) = simple_sim();
        let c = sim.register_client(Box::new(SingleRegisterClient { target: b }));
        assert_eq!(sim.invoked_high_count(), 0);
        assert_eq!(sim.completed_high_count(), 0);
        sim.invoke(c, HighOp::Write(1)).unwrap();
        assert_eq!(sim.invoked_high_count(), 1);
        assert_eq!(sim.completed_high_count(), 0);
        let op = sim.pending_ops().next().unwrap().op_id;
        sim.deliver(op).unwrap();
        assert_eq!(sim.completed_high_count(), 1);
    }

    /// Golden-trace proof of the non-perturbation contract: the same seeded
    /// run produces a byte-identical history and metric surface whether
    /// global telemetry is enabled or not. The run exercises every hook site
    /// (invoke, deliver, drop, server crash, client crash) under a seeded
    /// fair driver.
    #[test]
    fn telemetry_does_not_perturb_runs() {
        fn golden_run() -> String {
            let mut t = Topology::new(3);
            let objs = t.add_object_per_server(ObjectKind::Register);
            let mut sim = Simulation::new(t, SimConfig::with_fault_threshold(1));
            let clients: Vec<ClientId> = objs
                .iter()
                .map(|obj| sim.register_client(Box::new(SingleRegisterClient { target: *obj })))
                .collect();
            let mut driver = crate::driver::FairDriver::new(42);
            for round in 0..20u64 {
                for (i, c) in clients.iter().enumerate() {
                    if sim.is_client_idle(*c) {
                        sim.invoke(*c, HighOp::Write(round * 10 + i as u64))
                            .unwrap();
                    }
                }
                if round == 7 {
                    let first = sim.pending_ops().next().map(|p| p.op_id);
                    if let Some(op) = first {
                        sim.drop_pending(op).unwrap();
                    }
                }
                if round == 11 {
                    sim.crash_server(ServerId::new(2)).unwrap();
                    sim.crash_client(clients[2]).unwrap();
                }
                for _ in 0..2 {
                    driver.step(&mut sim).unwrap();
                }
            }
            let events: Vec<&Event> = sim.history().events().collect();
            format!(
                "{events:?}\ntime={} pending={} covered={} peaks={}/{}/{} done={}",
                sim.time(),
                sim.pending_count(),
                sim.covered_count_now(),
                sim.peak_covered_count(),
                sim.peak_covered_on_one_server(),
                sim.peak_pending_count(),
                sim.completed_high_count(),
            )
        }

        let was_enabled = regemu_obs::enabled();
        regemu_obs::set_enabled(false);
        let off = golden_run();
        regemu_obs::set_enabled(true);
        let on = golden_run();
        regemu_obs::set_enabled(was_enabled);
        assert_eq!(on, off, "telemetry perturbed the run");
        assert!(off.contains("ServerCrash"), "run must exercise crash hooks");
    }

    #[test]
    fn unknown_ids_are_rejected() {
        let (mut sim, _b) = simple_sim();
        assert!(matches!(
            sim.invoke(ClientId::new(5), HighOp::Read),
            Err(SimError::UnknownClient(_))
        ));
        assert!(matches!(
            sim.deliver(OpId::new(99)),
            Err(SimError::UnknownOp(_))
        ));
        assert!(matches!(
            sim.crash_server(ServerId::new(9)),
            Err(SimError::UnknownServer(_))
        ));
        assert!(matches!(
            sim.crash_client(ClientId::new(9)),
            Err(SimError::UnknownClient(_))
        ));
        assert!(matches!(
            sim.object(ObjectId::new(42)),
            Err(SimError::UnknownObject(_))
        ));
    }
}
