//! Regenerates the **Theorem 8** evidence: along the adversarial
//! write-sequential run the point contention stays 1 while the resource
//! consumption grows linearly with the number of writes — so no function of
//! point contention can bound the space of a fault-tolerant emulation.
//!
//! ```text
//! cargo run -p regemu-bench --bin theorem8_contention
//! ```

use regemu_bench::experiments::theorem8_contention;
use regemu_bounds::Params;

fn main() {
    for (k, f, n) in [(8usize, 1usize, 3usize), (6, 2, 5)] {
        println!(
            "{}",
            theorem8_contention(Params::new(k, f, n).expect("valid parameters"))
        );
        println!();
    }
}
