//! # regemu-spec — consistency-condition checkers
//!
//! Checkers for the consistency conditions used by Chockler & Spiegelman
//! (PODC 2017) to state their bounds:
//!
//! * **atomicity** (linearizability) — [`linearizability::check_linearizable`];
//! * **Write-Sequential Regularity** — [`regularity::check_ws_regular`], the
//!   condition satisfied by the paper's upper-bound constructions;
//! * **Write-Sequential Safety** — [`regularity::check_ws_safe`], the weaker
//!   condition under which the lower bounds are proven.
//!
//! The checkers operate on [`history::HighHistory`] schedules, which can be
//! extracted from any recorded `regemu-fpsm` run or constructed by hand.
//! For runs recorded under a bounded-memory
//! [`regemu_fpsm::RecordingMode`], the same conditions can be verified
//! *online* with [`streaming::StreamingChecker`], which consumes the event
//! stream as it is produced and keeps only a contention-bounded window of
//! operations alive.
//!
//! ## Example
//!
//! ```
//! use regemu_spec::prelude::*;
//! use regemu_fpsm::{HighOp, HighResponse};
//!
//! let mut schedule = HighHistory::default();
//! schedule.push_complete(0, HighOp::Write(7), HighResponse::WriteAck, 0, 1);
//! schedule.push_complete(1, HighOp::Read, HighResponse::ReadValue(7), 2, 3);
//!
//! check_ws_regular(&schedule, &SequentialSpec::register())?;
//! check_linearizable(&schedule, &SequentialSpec::register())?;
//! # Ok::<(), regemu_spec::Violation>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod history;
pub mod linearizability;
pub mod regularity;
pub mod report;
pub mod sequential;
pub mod streaming;

pub use history::HighHistory;
pub use linearizability::check_linearizable;
pub use regularity::{check_ws_regular, check_ws_safe, legal_read_values};
pub use report::{CheckResult, Condition, Violation};
pub use sequential::{Semantics, SequentialSpec};
pub use streaming::{StreamingChecker, StreamingOutcome};

/// Convenient glob import of the most frequently used items.
pub mod prelude {
    pub use crate::history::HighHistory;
    pub use crate::linearizability::check_linearizable;
    pub use crate::regularity::{check_ws_regular, check_ws_safe};
    pub use crate::report::{CheckResult, Condition, Violation};
    pub use crate::sequential::{Semantics, SequentialSpec};
    pub use crate::streaming::{StreamingChecker, StreamingOutcome};
}
