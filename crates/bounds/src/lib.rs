//! # regemu-bounds — closed-form space-complexity bounds
//!
//! The bounds of Chockler & Spiegelman, *Space Complexity of Fault-Tolerant
//! Register Emulations* (PODC 2017), as executable formulas. The central
//! quantities (Table 1) are, for an `f`-tolerant emulation of a `k`-writer
//! register from base objects hosted on `n > 2f` crash-prone servers:
//!
//! | base object | lower bound (WS-Safe, obstruction-free) | upper bound (WS-Regular, wait-free) |
//! |---|---|---|
//! | max-register | `2f + 1` | `2f + 1` |
//! | CAS | `2f + 1` | `2f + 1` |
//! | read/write register | `kf + ⌈kf/(n-(f+1))⌉·(f+1)` | `kf + ⌈k/⌊(n-(f+1))/f⌋⌉·(f+1)` |
//!
//! plus the appendix results: the `n = 2f+1` per-server bound (Theorem 6), the
//! bounded-storage server bound (Theorem 7), the minimum number of servers
//! (Theorem 5) and the `k`-writer max-register bound in ordinary shared memory
//! (Theorem 2).
//!
//! ## Example
//!
//! ```
//! use regemu_bounds::{Params, register_lower_bound, register_upper_bound};
//!
//! let p = Params::new(5, 2, 6)?; // k = 5 writers, f = 2, n = 6 servers
//! assert_eq!(register_lower_bound(p), 10 + 4 * 3); // kf + ⌈kf/(n-f-1)⌉(f+1)
//! assert_eq!(register_upper_bound(p), 10 + 5 * 3); // kf + ⌈k/z⌉(f+1), z = 1
//! # Ok::<(), regemu_bounds::ParamError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize};
use std::fmt;

/// The parameters of an emulation: number of writers `k`, failure threshold
/// `f` and number of servers `n`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Params {
    /// Number of writers of the emulated register.
    pub k: usize,
    /// Failure threshold: maximum number of servers that may crash.
    pub f: usize,
    /// Number of servers `n = |S|`.
    pub n: usize,
}

/// Errors raised when constructing invalid parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParamError {
    /// `k` must be at least 1.
    NoWriters,
    /// `f` must be at least 1 (the paper assumes `f > 0`).
    NoFaults,
    /// Emulation is impossible with `n ≤ 2f` servers (Theorem 5).
    TooFewServers {
        /// Number of servers requested.
        n: usize,
        /// Minimum required, `2f + 1`.
        required: usize,
    },
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::NoWriters => write!(f, "the number of writers k must be at least 1"),
            ParamError::NoFaults => write!(f, "the failure threshold f must be at least 1"),
            ParamError::TooFewServers { n, required } => write!(
                f,
                "an f-tolerant emulation needs at least {required} servers, got {n} (Theorem 5)"
            ),
        }
    }
}

impl std::error::Error for ParamError {}

impl Params {
    /// Creates a parameter set, validating `k ≥ 1`, `f ≥ 1` and `n ≥ 2f + 1`.
    ///
    /// # Errors
    ///
    /// Returns a [`ParamError`] describing the violated constraint.
    pub fn new(k: usize, f: usize, n: usize) -> Result<Self, ParamError> {
        if k == 0 {
            return Err(ParamError::NoWriters);
        }
        if f == 0 {
            return Err(ParamError::NoFaults);
        }
        if n < 2 * f + 1 {
            return Err(ParamError::TooFewServers {
                n,
                required: 2 * f + 1,
            });
        }
        Ok(Params { k, f, n })
    }

    /// The writer capacity `z = ⌊(n - (f+1)) / f⌋` of a single register set in
    /// the upper-bound construction (Section 3.3).
    pub fn z(&self) -> usize {
        (self.n - (self.f + 1)) / self.f
    }

    /// The size `y = z·f + f + 1` of a full register set in the upper-bound
    /// construction.
    pub fn y(&self) -> usize {
        self.z() * self.f + self.f + 1
    }

    /// Number of register sets `m = ⌈k / z⌉` used by the upper-bound
    /// construction.
    pub fn register_set_count(&self) -> usize {
        self.k.div_ceil(self.z())
    }

    /// Returns `true` when the paper's lower and upper bounds coincide for
    /// these parameters: at `n = 2f + 1` and whenever `n ≥ kf + f + 1`.
    pub fn bounds_coincide(&self) -> bool {
        register_lower_bound(*self) == register_upper_bound(*self)
    }
}

impl fmt::Display for Params {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k={}, f={}, n={}", self.k, self.f, self.n)
    }
}

/// Minimum number of servers for any `f`-tolerant WS-Safe obstruction-free
/// emulation (Theorem 5): `2f + 1`.
pub fn min_servers(f: usize) -> usize {
    2 * f + 1
}

/// Lower **and** upper bound on the number of base objects when the servers
/// expose max-registers (Table 1, row 1): `2f + 1`, independent of `k` and `n`.
pub fn max_register_bound(f: usize) -> usize {
    2 * f + 1
}

/// Lower **and** upper bound on the number of base objects when the servers
/// expose CAS objects (Table 1, row 2): `2f + 1`, independent of `k` and `n`.
pub fn cas_bound(f: usize) -> usize {
    2 * f + 1
}

/// Theorem 1 — lower bound on the number of read/write base registers used by
/// any `f`-tolerant obstruction-free WS-Safe `k`-register emulation over `n`
/// servers: `kf + ⌈kf / (n - (f+1))⌉ · (f+1)`.
pub fn register_lower_bound(p: Params) -> usize {
    let Params { k, f, n } = p;
    k * f + (k * f).div_ceil(n - (f + 1)) * (f + 1)
}

/// Theorem 3 — number of read/write base registers used by the paper's
/// wait-free WS-Regular construction (Algorithm 2):
/// `kf + ⌈k / z⌉ · (f+1)` with `z = ⌊(n - (f+1)) / f⌋`.
pub fn register_upper_bound(p: Params) -> usize {
    let Params { k, f, .. } = p;
    k * f + p.k.div_ceil(p.z()) * (f + 1)
}

/// The simplest corollary of Theorem 1: at least `kf + f + 1` registers are
/// needed regardless of how many servers are available.
pub fn register_lower_bound_any_n(k: usize, f: usize) -> usize {
    k * f + f + 1
}

/// Theorem 2 — any wait-free implementation of a `k`-writer max-register from
/// MWMR atomic read/write registers (ordinary shared memory, no failures)
/// uses at least `k` base registers.
pub fn max_register_from_registers_lower_bound(k: usize) -> usize {
    k
}

/// Theorem 6 — with exactly `n = 2f + 1` servers, every server must store at
/// least `k` registers.
pub fn per_server_lower_bound_minimal_n(k: usize) -> usize {
    k
}

/// Theorem 7 — when every server stores at most `m` registers, any
/// `f`-tolerant obstruction-free WS-Safe `k`-register emulation uses at least
/// `⌈kf / m⌉ + f + 1` servers.
pub fn servers_needed_with_bounded_storage(k: usize, f: usize, m: usize) -> usize {
    assert!(m > 0, "per-server storage bound m must be positive");
    (k * f).div_ceil(m) + f + 1
}

/// The matching upper bound discussed for the special case `n = 2f + 1`: each
/// server implements a `k`-writer max-register from `k` base registers, for a
/// total of `(2f + 1)·k` registers.
pub fn special_case_minimal_n_upper_bound(k: usize, f: usize) -> usize {
    (2 * f + 1) * k
}

/// The smallest `n` at which the bounds flatten out: for `n ≥ kf + f + 1`
/// both the lower and the upper bound equal `kf + f + 1` and adding servers
/// no longer helps.
pub fn saturation_server_count(k: usize, f: usize) -> usize {
    k * f + f + 1
}

// ----- bounds as executable oracles ----------------------------------------

/// Errors raised by the checked bound formulas ([`checked_register_bounds`])
/// on raw `(k, f, n)` triples that fall outside the formulas' domain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BoundError {
    /// The parameters violate a basic constraint (`k ≥ 1`, `f ≥ 1`,
    /// `n ≥ 2f + 1`), before any formula is evaluated.
    InvalidParams(ParamError),
    /// Theorem 3's upper bound is undefined: the register-set writer
    /// capacity `z = ⌊(n - (f+1)) / f⌋` is zero, so no register set can host
    /// even one writer. Equivalent to `n < 2f + 1` — the construction (and,
    /// by Theorem 5, any construction) needs more servers.
    ZeroSetCapacity {
        /// Number of writers requested.
        k: usize,
        /// Failure threshold requested.
        f: usize,
        /// Number of servers requested.
        n: usize,
    },
}

impl fmt::Display for BoundError {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoundError::InvalidParams(e) => write!(out, "invalid parameters: {e}"),
            BoundError::ZeroSetCapacity { k, f, n } => write!(
                out,
                "upper bound undefined at k={k}, f={f}, n={n}: register-set capacity \
                 z = ⌊(n-f-1)/f⌋ is 0 (need n ≥ 2f+1)"
            ),
        }
    }
}

impl std::error::Error for BoundError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BoundError::InvalidParams(e) => Some(e),
            BoundError::ZeroSetCapacity { .. } => None,
        }
    }
}

impl From<ParamError> for BoundError {
    fn from(e: ParamError) -> Self {
        BoundError::InvalidParams(e)
    }
}

/// Checked form of the Table-1 register row on a *raw* `(k, f, n)` triple:
/// returns `(register_lower_bound, register_upper_bound)` or a typed
/// [`BoundError`] when the formulas are undefined, distinguishing the
/// `z = 0` degeneracy (too few servers for even one register set) from the
/// basic parameter constraints.
pub fn checked_register_bounds(k: usize, f: usize, n: usize) -> Result<(usize, usize), BoundError> {
    if k == 0 {
        return Err(ParamError::NoWriters.into());
    }
    if f == 0 {
        return Err(ParamError::NoFaults.into());
    }
    // z = 0 ⇔ n - (f+1) < f ⇔ n < 2f + 1: report it as the formula-level
    // degeneracy it is (the ⌈k/z⌉ term of Theorem 3 divides by zero).
    if n < f + 1 || (n - (f + 1)) / f == 0 {
        return Err(BoundError::ZeroSetCapacity { k, f, n });
    }
    let p = Params::new(k, f, n)?;
    Ok((register_lower_bound(p), register_upper_bound(p)))
}

/// The base-object row of Table 1 (or the construction-specific budget) a
/// measurement is judged against by [`BoundVerdict::judge`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BoundClass {
    /// Max-register base objects: lower = upper = `2f + 1` (Table 1 row 1).
    MaxRegister,
    /// CAS base objects: lower = upper = `2f + 1` (Table 1 row 2).
    Cas,
    /// Read/write registers, space-optimal construction (Algorithm 2):
    /// lower bound from Theorem 1, upper bound from Theorem 3.
    Register,
    /// Read/write registers, full-replication bank (`k` registers on each
    /// of the `n` servers — the special-case construction generalized past
    /// `n = 2f + 1`): Theorem 1 still lower-bounds it, its budget is `n·k`.
    RegisterBank,
}

impl BoundClass {
    /// Stable short name used in frontier tables and CSV columns.
    pub fn name(self) -> &'static str {
        match self {
            BoundClass::MaxRegister => "max-register",
            BoundClass::Cas => "cas",
            BoundClass::Register => "register",
            BoundClass::RegisterBank => "register-bank",
        }
    }

    /// The paper's lower bound on base objects for this class at `p`.
    pub fn lower_bound(self, p: Params) -> usize {
        match self {
            BoundClass::MaxRegister => max_register_bound(p.f),
            BoundClass::Cas => cas_bound(p.f),
            BoundClass::Register | BoundClass::RegisterBank => register_lower_bound(p),
        }
    }

    /// The upper bound (construction budget) for this class at `p`.
    pub fn upper_bound(self, p: Params) -> usize {
        match self {
            BoundClass::MaxRegister => max_register_bound(p.f),
            BoundClass::Cas => cas_bound(p.f),
            BoundClass::Register => register_upper_bound(p),
            BoundClass::RegisterBank => p.n * p.k,
        }
    }
}

impl fmt::Display for BoundClass {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        out.write_str(self.name())
    }
}

/// A measured space consumption judged against the paper's bounds — the
/// executable-oracle form of Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoundVerdict {
    /// The bound row the measurement was judged against.
    pub class: BoundClass,
    /// The parameter point.
    pub params: Params,
    /// The class's lower bound at these parameters.
    pub lower: usize,
    /// The class's upper bound (construction budget) at these parameters.
    pub upper: usize,
    /// The measured peak base-object usage.
    pub measured: usize,
}

impl BoundVerdict {
    /// Judges `measured` against the `class` bounds at `params`.
    pub fn judge(class: BoundClass, params: Params, measured: usize) -> Self {
        BoundVerdict {
            class,
            params,
            lower: class.lower_bound(params),
            upper: class.upper_bound(params),
            measured,
        }
    }

    /// `true` when the measurement respects the upper bound — what every
    /// clean construction must satisfy on every schedule.
    pub fn within_upper(&self) -> bool {
        self.measured <= self.upper
    }

    /// Unused headroom below the upper bound (`0` when at or over it).
    pub fn slack(&self) -> usize {
        self.upper.saturating_sub(self.measured)
    }

    /// How far the measurement overshoots the upper bound (`0` when within).
    pub fn excess(&self) -> usize {
        self.measured.saturating_sub(self.upper)
    }

    /// `true` when an adversarial schedule drove the measurement all the way
    /// up to (or past) the lower-bound frontier.
    pub fn reaches_lower(&self) -> bool {
        self.measured >= self.lower
    }

    /// Stable one-word verdict for report columns: `ok` within the upper
    /// bound, `exceeds` otherwise.
    pub fn label(&self) -> &'static str {
        if self.within_upper() {
            "ok"
        } else {
            "exceeds"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parameter_validation() {
        assert_eq!(Params::new(0, 1, 3), Err(ParamError::NoWriters));
        assert_eq!(Params::new(1, 0, 3), Err(ParamError::NoFaults));
        assert_eq!(
            Params::new(1, 1, 2),
            Err(ParamError::TooFewServers { n: 2, required: 3 })
        );
        let p = Params::new(3, 1, 4).unwrap();
        assert_eq!(p.to_string(), "k=3, f=1, n=4");
    }

    #[test]
    fn paper_figure1_parameters() {
        // Figure 1: n = 6, k = 5, f = 2 → z = ⌊3/2⌋ = 1, y = 5, m = 5 sets.
        let p = Params::new(5, 2, 6).unwrap();
        assert_eq!(p.z(), 1);
        assert_eq!(p.y(), 5);
        assert_eq!(p.register_set_count(), 5);
        assert_eq!(register_lower_bound(p), 5 * 2 + 4 * 3); // 22
        assert_eq!(register_upper_bound(p), 5 * 2 + 5 * 3); // 25
        assert!(!p.bounds_coincide());
    }

    #[test]
    fn bounds_coincide_at_minimal_n() {
        // n = 2f + 1: both bounds equal kf + k(f+1) = (2f+1)k.
        for f in 1..=4usize {
            for k in 1..=8usize {
                let p = Params::new(k, f, 2 * f + 1).unwrap();
                assert_eq!(register_lower_bound(p), (2 * f + 1) * k);
                assert_eq!(register_upper_bound(p), (2 * f + 1) * k);
                assert_eq!(
                    register_upper_bound(p),
                    special_case_minimal_n_upper_bound(k, f)
                );
                assert!(p.bounds_coincide());
            }
        }
    }

    #[test]
    fn bounds_coincide_at_saturation() {
        // n ≥ kf + f + 1: both bounds equal kf + f + 1.
        for f in 1..=3usize {
            for k in 1..=6usize {
                let n = saturation_server_count(k, f);
                let p = Params::new(k, f, n).unwrap();
                assert_eq!(register_lower_bound(p), k * f + f + 1);
                assert_eq!(register_upper_bound(p), k * f + f + 1);
                assert_eq!(register_lower_bound(p), register_lower_bound_any_n(k, f));
                // Adding even more servers does not reduce the bound further.
                let p_big = Params::new(k, f, n + 10).unwrap();
                assert_eq!(register_lower_bound(p_big), k * f + f + 1);
                assert_eq!(register_upper_bound(p_big), k * f + f + 1);
            }
        }
    }

    #[test]
    fn max_register_and_cas_bounds_ignore_k_and_n() {
        assert_eq!(max_register_bound(1), 3);
        assert_eq!(max_register_bound(3), 7);
        assert_eq!(cas_bound(2), 5);
        assert_eq!(min_servers(2), 5);
    }

    #[test]
    fn theorem_7_examples() {
        // m = 1 register per server: kf + f + 1 servers needed.
        assert_eq!(servers_needed_with_bounded_storage(4, 2, 1), 8 + 3);
        // m large enough: f + 2 servers suffice per the formula's floor.
        assert_eq!(servers_needed_with_bounded_storage(4, 2, 100), 1 + 3);
        assert_eq!(servers_needed_with_bounded_storage(3, 1, 2), 2 + 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn theorem_7_rejects_zero_storage() {
        servers_needed_with_bounded_storage(1, 1, 0);
    }

    #[test]
    fn theorem_2_and_6_are_k() {
        assert_eq!(max_register_from_registers_lower_bound(7), 7);
        assert_eq!(per_server_lower_bound_minimal_n(4), 4);
    }

    #[test]
    fn upper_bound_matches_register_set_accounting() {
        // The construction uses ⌊k/z⌋ full sets of y registers plus an
        // overflow set; the total must equal the closed form.
        for f in 1..=3usize {
            for k in 1..=10usize {
                for n in (2 * f + 1)..=(4 * f + 3) {
                    let p = Params::new(k, f, n).unwrap();
                    let z = p.z();
                    let full_sets = k / z;
                    let rem = k % z;
                    let mut total = full_sets * p.y();
                    if rem > 0 {
                        total += rem * f + f + 1;
                    }
                    assert_eq!(
                        total,
                        register_upper_bound(p),
                        "set accounting mismatch at {p}"
                    );
                }
            }
        }
    }

    #[test]
    fn checked_bounds_reject_degenerate_points_with_typed_errors() {
        // z = 0: every n < 2f + 1 (including the n ≤ f + 1 underflow region)
        // is the formula-level degeneracy, not a generic parameter error.
        for (k, f, n) in [(1, 1, 2), (3, 2, 4), (5, 3, 6), (2, 2, 0), (2, 3, 3)] {
            assert_eq!(
                checked_register_bounds(k, f, n),
                Err(BoundError::ZeroSetCapacity { k, f, n }),
                "(k={k}, f={f}, n={n})"
            );
        }
        // k = 0 / f = 0 stay basic parameter errors.
        assert_eq!(
            checked_register_bounds(0, 1, 3),
            Err(BoundError::InvalidParams(ParamError::NoWriters))
        );
        assert_eq!(
            checked_register_bounds(1, 0, 3),
            Err(BoundError::InvalidParams(ParamError::NoFaults))
        );
        // Error text names the degeneracy and the remedy.
        let e = checked_register_bounds(1, 1, 2).unwrap_err();
        assert!(e.to_string().contains("z = ⌊(n-f-1)/f⌋ is 0"), "{e}");
        assert!(
            std::error::Error::source(&BoundError::InvalidParams(ParamError::NoWriters)).is_some()
        );
    }

    #[test]
    fn checked_bounds_match_the_unchecked_formulas_on_valid_points() {
        for f in 1..=3usize {
            for k in 1..=8usize {
                for n in (2 * f + 1)..=(2 * f + 5) {
                    let p = Params::new(k, f, n).unwrap();
                    assert_eq!(
                        checked_register_bounds(k, f, n),
                        Ok((register_lower_bound(p), register_upper_bound(p)))
                    );
                }
            }
        }
    }

    #[test]
    fn theorem6_row_at_minimal_n() {
        // n = 2f + 1: per-server occupancy must reach k (Theorem 6), and the
        // register bounds collapse onto the (2f+1)·k bank — k per server.
        for f in 1..=3usize {
            for k in 1..=6usize {
                let p = Params::new(k, f, 2 * f + 1).unwrap();
                assert_eq!(per_server_lower_bound_minimal_n(k), k);
                assert_eq!(register_upper_bound(p), (2 * f + 1) * k);
                assert_eq!(
                    BoundClass::RegisterBank.upper_bound(p),
                    special_case_minimal_n_upper_bound(k, f)
                );
                assert_eq!(register_upper_bound(p) / p.n, k);
            }
        }
    }

    #[test]
    fn k1_bounds_collapse_to_the_single_writer_point() {
        // k = 1: one register set of f + (f+1) registers; lower = upper.
        for f in 1..=4usize {
            for n in (2 * f + 1)..=(3 * f + 2) {
                let p = Params::new(1, f, n).unwrap();
                assert_eq!(register_upper_bound(p), 2 * f + 1);
                assert_eq!(register_lower_bound(p), 2 * f + 1);
                assert!(p.bounds_coincide());
            }
        }
    }

    #[test]
    fn bound_verdict_judges_each_class_row() {
        let p = Params::new(5, 2, 6).unwrap(); // Figure 1: lower 22, upper 25
        let v = BoundVerdict::judge(BoundClass::Register, p, 23);
        assert_eq!((v.lower, v.upper), (22, 25));
        assert!(v.within_upper());
        assert!(v.reaches_lower());
        assert_eq!(v.slack(), 2);
        assert_eq!(v.excess(), 0);
        assert_eq!(v.label(), "ok");

        let over = BoundVerdict::judge(BoundClass::MaxRegister, p, 9);
        assert_eq!((over.lower, over.upper), (5, 5));
        assert!(!over.within_upper());
        assert_eq!(over.excess(), 4);
        assert_eq!(over.slack(), 0);
        assert_eq!(over.label(), "exceeds");

        let bank = BoundVerdict::judge(BoundClass::RegisterBank, p, 30);
        assert_eq!(bank.upper, 30);
        assert_eq!(bank.lower, 22);
        assert!(bank.within_upper());

        let cas = BoundVerdict::judge(BoundClass::Cas, p, 5);
        assert_eq!(cas.label(), "ok");
        assert_eq!(BoundClass::Cas.name(), "cas");
        assert_eq!(BoundClass::Register.to_string(), "register");
    }

    proptest! {
        #[test]
        fn lower_bound_never_exceeds_upper_bound(
            k in 1usize..40, f in 1usize..6, extra in 0usize..60
        ) {
            let n = 2 * f + 1 + extra;
            let p = Params::new(k, f, n).unwrap();
            prop_assert!(register_lower_bound(p) <= register_upper_bound(p));
        }

        #[test]
        fn bounds_are_monotone_in_k(
            k in 1usize..40, f in 1usize..6, extra in 0usize..60
        ) {
            let n = 2 * f + 1 + extra;
            let p1 = Params::new(k, f, n).unwrap();
            let p2 = Params::new(k + 1, f, n).unwrap();
            prop_assert!(register_lower_bound(p1) <= register_lower_bound(p2));
            prop_assert!(register_upper_bound(p1) <= register_upper_bound(p2));
        }

        #[test]
        fn bounds_are_monotone_nonincreasing_in_n(
            k in 1usize..40, f in 1usize..6, extra in 0usize..60
        ) {
            let n = 2 * f + 1 + extra;
            let p1 = Params::new(k, f, n).unwrap();
            let p2 = Params::new(k, f, n + 1).unwrap();
            prop_assert!(register_lower_bound(p2) <= register_lower_bound(p1));
            prop_assert!(register_upper_bound(p2) <= register_upper_bound(p1));
        }

        #[test]
        fn lower_bound_dominates_its_n_independent_corollary(
            k in 1usize..40, f in 1usize..6, extra in 0usize..60
        ) {
            let n = 2 * f + 1 + extra;
            let p = Params::new(k, f, n).unwrap();
            prop_assert!(register_lower_bound(p) >= register_lower_bound_any_n(k, f));
            prop_assert!(register_lower_bound(p) >= k * f);
        }

        #[test]
        fn register_bounds_always_exceed_rmw_bounds(
            k in 1usize..40, f in 1usize..6, extra in 0usize..60
        ) {
            // The separation of Table 1: registers always need at least as
            // many objects as max-registers/CAS, and strictly more once k > 1.
            let n = 2 * f + 1 + extra;
            let p = Params::new(k, f, n).unwrap();
            prop_assert!(register_lower_bound(p) >= max_register_bound(f));
            if k > 1 {
                prop_assert!(register_lower_bound(p) > cas_bound(f));
            }
        }

        #[test]
        fn upper_bound_gap_is_at_most_one_set(
            k in 1usize..40, f in 1usize..6, extra in 0usize..60
        ) {
            // The gap between the bounds is below (f+1) per "started" set,
            // i.e. bounded by ⌈k/z⌉(f+1) - ⌈kf/(n-f-1)⌉(f+1) which is small;
            // sanity-check it never exceeds k(f+1).
            let n = 2 * f + 1 + extra;
            let p = Params::new(k, f, n).unwrap();
            prop_assert!(register_upper_bound(p) - register_lower_bound(p) <= k * (f + 1));
        }

        #[test]
        fn z_and_y_satisfy_their_defining_inequalities(
            k in 1usize..40, f in 1usize..6, extra in 0usize..60
        ) {
            let n = 2 * f + 1 + extra;
            let p = Params::new(k, f, n).unwrap();
            // z ≥ 1 whenever n ≥ 2f + 1, and a full set fits on the servers.
            prop_assert!(p.z() >= 1);
            prop_assert!(p.y() >= 2 * f + 1);
            prop_assert!(p.y() <= n);
        }
    }
}
