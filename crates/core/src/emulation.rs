//! Emulation factories.
//!
//! An [`Emulation`] bundles everything needed to run one of the paper's
//! constructions inside the simulator: the base-object topology (how many
//! objects of which kind on which servers) and constructors for writer and
//! reader client protocols. The four provided emulations correspond to the
//! rows of Table 1 plus the `n = 2f+1` special case:
//!
//! | factory | base objects | count | guarantee |
//! |---|---|---|---|
//! | [`AbdMaxRegisterEmulation`] | max-registers | `2f + 1` (one per quorum server) | WS-Regular (atomic with write-back) |
//! | [`AbdCasEmulation`] | CAS | `2f + 1` | WS-Regular (atomic with write-back) |
//! | [`RegisterBankEmulation`] | read/write registers | `n·k` (k per server) | WS-Regular (atomic with write-back) |
//! | [`SpaceOptimalEmulation`] | read/write registers | `kf + ⌈k/z⌉(f+1)` | WS-Regular, wait-free (Algorithm 2) |

use crate::abd::AbdClient;
use crate::drivers::{BankMaxDriver, CasMaxDriver, MaxDriver, NativeMaxDriver};
use crate::layout::RegisterLayout;
use crate::upper_bound::{SharedLayout, SpaceOptimalClient};
use regemu_bounds::Params;
use regemu_fpsm::{
    ClientProtocol, ObjectId, ObjectKind, ServerId, SimConfig, Simulation, Topology,
};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// The canonical registry of emulation constructions, by kind.
///
/// An [`EmulationKind`] is the *description* of a construction — `Copy`,
/// serializable and cheap to pass around — while [`EmulationKind::build`]
/// produces the runnable [`Emulation`] instance for a parameter point.
/// Scenario descriptions, sweeps, the experiment binaries and the examples
/// all select constructions through this enum, so adding a construction here
/// makes it available to every experiment surface at once.
///
/// A `Box<dyn Emulation>` is not `Send`, so parallel harnesses describe the
/// construction by kind and each worker builds its own instance — which also
/// keeps every case hermetic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EmulationKind {
    /// Multi-writer ABD over one max-register per server (Table 1, row 1).
    AbdMaxRegister,
    /// Multi-writer ABD over one CAS object per server (Table 1, row 2).
    AbdCas,
    /// The paper's space-optimal register construction (Algorithm 2).
    SpaceOptimal,
    /// ABD over per-server banks of plain registers (the naive baseline).
    RegisterBank,
    /// [`EmulationKind::AbdMaxRegister`] with read write-back (atomic).
    AbdMaxRegisterAtomic,
    /// [`EmulationKind::AbdCas`] with read write-back (atomic).
    AbdCasAtomic,
    /// [`EmulationKind::RegisterBank`] with read write-back for writers.
    RegisterBankAtomic,
}

impl EmulationKind {
    /// The WS-Regular constructions compared throughout the evaluation, in
    /// Table 1 order — the default sweep axis.
    pub const ALL: [EmulationKind; 4] = [
        EmulationKind::AbdMaxRegister,
        EmulationKind::AbdCas,
        EmulationKind::SpaceOptimal,
        EmulationKind::RegisterBank,
    ];

    /// The atomic (read write-back) ABD variants.
    pub const ATOMIC: [EmulationKind; 3] = [
        EmulationKind::AbdMaxRegisterAtomic,
        EmulationKind::AbdCasAtomic,
        EmulationKind::RegisterBankAtomic,
    ];

    /// Builds a fresh instance of this construction for `params`.
    pub fn build(self, params: Params) -> Box<dyn Emulation> {
        match self {
            EmulationKind::AbdMaxRegister => Box::new(AbdMaxRegisterEmulation::new(params, false)),
            EmulationKind::AbdCas => Box::new(AbdCasEmulation::new(params, false)),
            EmulationKind::SpaceOptimal => Box::new(SpaceOptimalEmulation::new(params)),
            EmulationKind::RegisterBank => Box::new(RegisterBankEmulation::new(params, false)),
            EmulationKind::AbdMaxRegisterAtomic => {
                Box::new(AbdMaxRegisterEmulation::new(params, true))
            }
            EmulationKind::AbdCasAtomic => Box::new(AbdCasEmulation::new(params, true)),
            EmulationKind::RegisterBankAtomic => Box::new(RegisterBankEmulation::new(params, true)),
        }
    }

    /// Stable short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            EmulationKind::AbdMaxRegister => "abd-max-register",
            EmulationKind::AbdCas => "abd-cas",
            EmulationKind::SpaceOptimal => "space-optimal",
            EmulationKind::RegisterBank => "register-bank",
            EmulationKind::AbdMaxRegisterAtomic => "abd-max-register-atomic",
            EmulationKind::AbdCasAtomic => "abd-cas-atomic",
            EmulationKind::RegisterBankAtomic => "register-bank-atomic",
        }
    }

    /// The inverse of [`EmulationKind::name`], for CLI flags and config
    /// files.
    pub fn from_name(name: &str) -> Option<Self> {
        EmulationKind::ALL
            .into_iter()
            .chain(EmulationKind::ATOMIC)
            .find(|k| k.name() == name)
    }
}

impl fmt::Display for EmulationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A fully described emulation instance: topology plus protocol factories.
pub trait Emulation {
    /// Short name used in tables and reports.
    fn name(&self) -> &'static str;

    /// The base-object type stored by the servers.
    fn base_object_kind(&self) -> ObjectKind;

    /// The `(k, f, n)` parameters.
    fn params(&self) -> Params;

    /// The topology (servers, base objects, placement) of the instance.
    fn topology(&self) -> &Topology;

    /// Number of base objects provisioned — the construction's space cost.
    fn base_object_count(&self) -> usize {
        self.topology().object_count()
    }

    /// Builds the protocol state machine for writer `writer_index`
    /// (0-based, `< k`).
    fn writer_protocol(&self, writer_index: usize) -> Box<dyn ClientProtocol>;

    /// Builds the protocol state machine for a read-only client.
    fn reader_protocol(&self) -> Box<dyn ClientProtocol>;

    /// Creates a fresh simulation of this instance (enforcing the failure
    /// threshold `f`).
    fn build_simulation(&self) -> Simulation {
        Simulation::new(
            self.topology().clone(),
            SimConfig::with_fault_threshold(self.params().f),
        )
    }
}

// ---------------------------------------------------------------------------
// ABD over native max-registers
// ---------------------------------------------------------------------------

/// Multi-writer ABD with one *max-register* per quorum server — the `2f + 1`
/// upper bound of Table 1, row 1.
///
/// Only `2f + 1` of the `n` available servers are used; using more servers
/// cannot reduce the space cost below `2f + 1` (and the paper's lower bound
/// shows it cannot go lower either).
#[derive(Debug)]
pub struct AbdMaxRegisterEmulation {
    params: Params,
    quorum_params: Params,
    topology: Topology,
    objects: Vec<ObjectId>,
    read_write_back: bool,
}

impl AbdMaxRegisterEmulation {
    /// Creates the emulation; `read_write_back` selects the atomic variant.
    pub fn new(params: Params, read_write_back: bool) -> Self {
        let quorum_n = 2 * params.f + 1;
        let quorum_params =
            Params::new(params.k, params.f, quorum_n).expect("2f+1 is always valid");
        let mut topology = Topology::new(params.n);
        let objects: Vec<ObjectId> = (0..quorum_n)
            .map(|s| topology.add_object(ObjectKind::MaxRegister, ServerId::new(s)))
            .collect();
        AbdMaxRegisterEmulation {
            params,
            quorum_params,
            topology,
            objects,
            read_write_back,
        }
    }

    pub(crate) fn drivers(&self) -> Vec<Box<dyn MaxDriver>> {
        self.objects
            .iter()
            .enumerate()
            .map(|(s, b)| {
                Box::new(NativeMaxDriver::new(ServerId::new(s), *b)) as Box<dyn MaxDriver>
            })
            .collect()
    }

    pub(crate) fn quorum_params(&self) -> Params {
        self.quorum_params
    }

    pub(crate) fn read_write_back(&self) -> bool {
        self.read_write_back
    }
}

impl Emulation for AbdMaxRegisterEmulation {
    fn name(&self) -> &'static str {
        "abd-max-register"
    }

    fn base_object_kind(&self) -> ObjectKind {
        ObjectKind::MaxRegister
    }

    fn params(&self) -> Params {
        self.params
    }

    fn topology(&self) -> &Topology {
        &self.topology
    }

    fn writer_protocol(&self, writer_index: usize) -> Box<dyn ClientProtocol> {
        Box::new(AbdClient::new(
            self.quorum_params,
            Some(writer_index),
            self.read_write_back,
            self.drivers(),
        ))
    }

    fn reader_protocol(&self) -> Box<dyn ClientProtocol> {
        Box::new(AbdClient::new(
            self.quorum_params,
            None,
            self.read_write_back,
            self.drivers(),
        ))
    }
}

// ---------------------------------------------------------------------------
// ABD over CAS (via Algorithm 1)
// ---------------------------------------------------------------------------

/// Multi-writer ABD with one *CAS object* per quorum server; each server's
/// max-register interface is provided by Algorithm 1's retry loop. The
/// `2f + 1` upper bound of Table 1, row 2.
#[derive(Debug)]
pub struct AbdCasEmulation {
    params: Params,
    quorum_params: Params,
    topology: Topology,
    objects: Vec<ObjectId>,
    read_write_back: bool,
}

impl AbdCasEmulation {
    /// Creates the emulation; `read_write_back` selects the atomic variant.
    pub fn new(params: Params, read_write_back: bool) -> Self {
        let quorum_n = 2 * params.f + 1;
        let quorum_params =
            Params::new(params.k, params.f, quorum_n).expect("2f+1 is always valid");
        let mut topology = Topology::new(params.n);
        let objects: Vec<ObjectId> = (0..quorum_n)
            .map(|s| topology.add_object(ObjectKind::Cas, ServerId::new(s)))
            .collect();
        AbdCasEmulation {
            params,
            quorum_params,
            topology,
            objects,
            read_write_back,
        }
    }

    fn drivers(&self) -> Vec<Box<dyn MaxDriver>> {
        self.objects
            .iter()
            .enumerate()
            .map(|(s, b)| Box::new(CasMaxDriver::new(ServerId::new(s), *b)) as Box<dyn MaxDriver>)
            .collect()
    }
}

impl Emulation for AbdCasEmulation {
    fn name(&self) -> &'static str {
        "abd-cas"
    }

    fn base_object_kind(&self) -> ObjectKind {
        ObjectKind::Cas
    }

    fn params(&self) -> Params {
        self.params
    }

    fn topology(&self) -> &Topology {
        &self.topology
    }

    fn writer_protocol(&self, writer_index: usize) -> Box<dyn ClientProtocol> {
        Box::new(AbdClient::new(
            self.quorum_params,
            Some(writer_index),
            self.read_write_back,
            self.drivers(),
        ))
    }

    fn reader_protocol(&self) -> Box<dyn ClientProtocol> {
        Box::new(AbdClient::new(
            self.quorum_params,
            None,
            self.read_write_back,
            self.drivers(),
        ))
    }
}

// ---------------------------------------------------------------------------
// ABD over per-server register banks (the n = 2f+1 special case)
// ---------------------------------------------------------------------------

/// Each server stores a bank of `k` plain registers implementing a `k`-writer
/// max-register (one slot per writer); multi-writer ABD runs on top. With
/// `n = 2f + 1` this is the `(2f+1)·k` construction the paper describes as
/// tight against the lower bound (and achieving regularity stronger than
/// WS-Regularity).
#[derive(Debug)]
pub struct RegisterBankEmulation {
    params: Params,
    topology: Topology,
    banks: Vec<Vec<ObjectId>>,
    read_write_back: bool,
}

impl RegisterBankEmulation {
    /// Creates the emulation over all `n` servers; `read_write_back` selects
    /// the atomic variant.
    pub fn new(params: Params, read_write_back: bool) -> Self {
        let mut topology = Topology::new(params.n);
        let banks: Vec<Vec<ObjectId>> = (0..params.n)
            .map(|s| {
                (0..params.k)
                    .map(|_| topology.add_object(ObjectKind::Register, ServerId::new(s)))
                    .collect()
            })
            .collect();
        RegisterBankEmulation {
            params,
            topology,
            banks,
            read_write_back,
        }
    }

    fn drivers(&self, own_slot: Option<usize>) -> Vec<Box<dyn MaxDriver>> {
        self.banks
            .iter()
            .enumerate()
            .map(|(s, bank)| {
                Box::new(BankMaxDriver::new(ServerId::new(s), bank.clone(), own_slot))
                    as Box<dyn MaxDriver>
            })
            .collect()
    }
}

impl Emulation for RegisterBankEmulation {
    fn name(&self) -> &'static str {
        "register-bank"
    }

    fn base_object_kind(&self) -> ObjectKind {
        ObjectKind::Register
    }

    fn params(&self) -> Params {
        self.params
    }

    fn topology(&self) -> &Topology {
        &self.topology
    }

    fn writer_protocol(&self, writer_index: usize) -> Box<dyn ClientProtocol> {
        Box::new(AbdClient::new(
            self.params,
            Some(writer_index),
            self.read_write_back,
            self.drivers(Some(writer_index)),
        ))
    }

    fn reader_protocol(&self) -> Box<dyn ClientProtocol> {
        // Bank slots belong to writers, so read-only clients can never write
        // back: the read_write_back option only strengthens the guarantee for
        // reads issued by writer clients. This mirrors the paper's remark
        // that atomicity generally requires readers to write, which the
        // register-bank layout does not budget for.
        Box::new(AbdClient::new(self.params, None, false, self.drivers(None)))
    }
}

// ---------------------------------------------------------------------------
// The space-optimal construction (Algorithm 2)
// ---------------------------------------------------------------------------

/// The paper's space-optimal construction (Algorithm 2): `kf + ⌈k/z⌉(f+1)`
/// plain registers laid out in disjoint per-writer-group sets.
#[derive(Debug)]
pub struct SpaceOptimalEmulation {
    params: Params,
    topology: Topology,
    shared: Arc<SharedLayout>,
}

impl SpaceOptimalEmulation {
    /// Creates the emulation.
    pub fn new(params: Params) -> Self {
        let (topology, layout) = RegisterLayout::build(params);
        let shared = SharedLayout::new(layout, &topology);
        SpaceOptimalEmulation {
            params,
            topology,
            shared,
        }
    }

    /// The register layout used by the construction.
    pub fn layout(&self) -> &RegisterLayout {
        self.shared.layout()
    }

    /// The shared layout handle given to every client protocol.
    pub fn shared_layout(&self) -> Arc<SharedLayout> {
        self.shared.clone()
    }
}

impl Emulation for SpaceOptimalEmulation {
    fn name(&self) -> &'static str {
        "space-optimal"
    }

    fn base_object_kind(&self) -> ObjectKind {
        ObjectKind::Register
    }

    fn params(&self) -> Params {
        self.params
    }

    fn topology(&self) -> &Topology {
        &self.topology
    }

    fn writer_protocol(&self, writer_index: usize) -> Box<dyn ClientProtocol> {
        Box::new(SpaceOptimalClient::writer(
            self.shared.clone(),
            writer_index,
        ))
    }

    fn reader_protocol(&self) -> Box<dyn ClientProtocol> {
        Box::new(SpaceOptimalClient::reader(self.shared.clone()))
    }
}

/// The register-based emulations compared throughout the evaluation, built
/// for the same parameters. Useful for sweeps.
pub fn register_based_emulations(params: Params) -> Vec<Box<dyn Emulation>> {
    vec![
        Box::new(SpaceOptimalEmulation::new(params)),
        Box::new(RegisterBankEmulation::new(params, false)),
    ]
}

/// All emulations of Table 1 (max-register, CAS, register-bank and
/// space-optimal), built for the same parameters.
pub fn all_emulations(params: Params) -> Vec<Box<dyn Emulation>> {
    vec![
        Box::new(AbdMaxRegisterEmulation::new(params, false)),
        Box::new(AbdCasEmulation::new(params, false)),
        Box::new(SpaceOptimalEmulation::new(params)),
        Box::new(RegisterBankEmulation::new(params, false)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use regemu_bounds::{cas_bound, max_register_bound, register_upper_bound};
    use regemu_fpsm::prelude::*;

    fn p(k: usize, f: usize, n: usize) -> Params {
        Params::new(k, f, n).unwrap()
    }

    fn smoke_test(emulation: &dyn Emulation) {
        let mut sim = emulation.build_simulation();
        let k = emulation.params().k;
        let writers: Vec<ClientId> = (0..k)
            .map(|i| sim.register_client(emulation.writer_protocol(i)))
            .collect();
        let reader = sim.register_client(emulation.reader_protocol());
        let mut driver = FairDriver::new(99);
        for (i, w) in writers.iter().enumerate() {
            let op = sim.invoke(*w, HighOp::Write(i as u64 + 1)).unwrap();
            driver.run_until_complete(&mut sim, op, 50_000).unwrap();
        }
        let r = sim.invoke(reader, HighOp::Read).unwrap();
        driver.run_until_complete(&mut sim, r, 50_000).unwrap();
        assert_eq!(
            sim.result_of(r),
            Some(HighResponse::ReadValue(k as u64)),
            "emulation {} returned a wrong value",
            emulation.name()
        );
    }

    #[test]
    fn every_emulation_round_trips() {
        for emulation in all_emulations(p(3, 1, 4)) {
            smoke_test(emulation.as_ref());
        }
    }

    #[test]
    fn provisioned_object_counts_match_table_1() {
        let params = p(4, 2, 7);
        assert_eq!(
            AbdMaxRegisterEmulation::new(params, false).base_object_count(),
            max_register_bound(2)
        );
        assert_eq!(
            AbdCasEmulation::new(params, false).base_object_count(),
            cas_bound(2)
        );
        assert_eq!(
            SpaceOptimalEmulation::new(params).base_object_count(),
            register_upper_bound(params)
        );
        assert_eq!(
            RegisterBankEmulation::new(params, false).base_object_count(),
            7 * 4
        );
    }

    #[test]
    fn base_object_kinds_are_correct() {
        let params = p(2, 1, 3);
        for emulation in all_emulations(params) {
            let kind = emulation.base_object_kind();
            let topology = emulation.topology();
            for b in topology.objects() {
                assert_eq!(topology.kind_of(b), kind, "{}", emulation.name());
            }
        }
    }

    #[test]
    fn atomic_variants_also_round_trip() {
        let params = p(2, 1, 3);
        let emulations: Vec<Box<dyn Emulation>> = vec![
            Box::new(AbdMaxRegisterEmulation::new(params, true)),
            Box::new(AbdCasEmulation::new(params, true)),
            Box::new(RegisterBankEmulation::new(params, true)),
        ];
        for emulation in emulations {
            smoke_test(emulation.as_ref());
        }
    }

    #[test]
    fn emulation_kind_registry_is_consistent() {
        let params = p(2, 1, 4);
        for kind in EmulationKind::ALL.into_iter().chain(EmulationKind::ATOMIC) {
            let emulation = kind.build(params);
            assert_eq!(EmulationKind::from_name(kind.name()), Some(kind));
            assert_eq!(kind.to_string(), kind.name());
            assert_eq!(emulation.params(), params);
            smoke_test(emulation.as_ref());
        }
        assert_eq!(EmulationKind::from_name("nope"), None);
        // `ALL` matches `all_emulations` name-for-name, in Table 1 order.
        let by_kind: Vec<_> = EmulationKind::ALL
            .into_iter()
            .map(|k| k.build(params).name().to_string())
            .collect();
        let by_factory: Vec<_> = all_emulations(params)
            .iter()
            .map(|e| e.name().to_string())
            .collect();
        assert_eq!(by_kind, by_factory);
    }

    #[test]
    fn abd_uses_only_2f_plus_1_servers_even_with_more_available() {
        let params = p(2, 1, 9);
        let e = AbdMaxRegisterEmulation::new(params, false);
        assert_eq!(e.topology().server_count(), 9);
        assert_eq!(e.base_object_count(), 3);
        smoke_test(&e);
    }
}
