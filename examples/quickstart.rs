//! Quickstart: emulate an f-tolerant multi-writer register from crash-prone
//! servers that only expose plain read/write registers.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The example builds the paper's space-optimal construction (Algorithm 2)
//! for `k = 3` writers, `f = 1` tolerated crash and `n = 5` servers, performs
//! a handful of writes and reads under a fair scheduler — crashing one server
//! along the way — and prints the space cost next to the paper's bounds.

use regemu::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---------------------------------------------------------------- setup
    let params = Params::new(3, 1, 5)?;
    println!("Parameters: {params}");
    println!(
        "Paper bounds for read/write registers: lower = {}, upper = {}",
        register_lower_bound(params),
        register_upper_bound(params)
    );

    let emulation = SpaceOptimalEmulation::new(params);
    println!(
        "Provisioned {} base registers across {} servers:\n",
        emulation.base_object_count(),
        params.n
    );
    println!("{}", emulation.layout().render());

    // ------------------------------------------------------------- clients
    let mut sim = emulation.build_simulation();
    let writers: Vec<ClientId> = (0..params.k)
        .map(|i| sim.register_client(emulation.writer_protocol(i)))
        .collect();
    let reader = sim.register_client(emulation.reader_protocol());
    let mut driver = FairDriver::new(2024);

    // --------------------------------------------------------------- write
    for (i, writer) in writers.iter().enumerate() {
        let value = (i as u64 + 1) * 100;
        let op = sim.invoke(*writer, HighOp::Write(value))?;
        driver.run_until_complete(&mut sim, op, 50_000)?;
        println!("writer {i} wrote {value}");
    }

    // One server may crash (f = 1); the emulation keeps working.
    sim.crash_server(ServerId::new(0))?;
    println!("server s0 crashed");

    // ---------------------------------------------------------------- read
    let read = sim.invoke(reader, HighOp::Read)?;
    driver.run_until_complete(&mut sim, read, 50_000)?;
    let value = sim.result_of(read).and_then(|r| r.payload()).unwrap();
    println!("reader observed {value}");
    assert_eq!(value, params.k as u64 * 100);

    // ------------------------------------------------------------- measure
    let metrics = RunMetrics::capture(&sim);
    println!(
        "\nResource consumption: {} base registers (upper bound {}), {} still covered by pending writes",
        metrics.resource_consumption(),
        register_upper_bound(params),
        metrics.covered_count()
    );

    // ---------------------------------------------------------- consistency
    let history = HighHistory::from_run(sim.history());
    check_ws_regular(&history, &SequentialSpec::register())?;
    println!("schedule verified WS-Regular ✔");
    Ok(())
}
