//! Golden-trace replay: `Scenario`-driven runs are byte-identical to the
//! pre-redesign `run_workload` path for the same seeds.
//!
//! The `legacy` module below is a frozen copy of the runner loop as it
//! existed before the `Scenario` engine (PR 3): a `FairDriver` plus a linear
//! `Vec` of outstanding operations, driving the simulation through its public
//! API. Every configuration in the matrix is executed through both paths and
//! the full event traces (every invoke / trigger / respond / return, with
//! logical times and ids, plus the end-of-run metrics) must match
//! byte-for-byte.
//!
//! The rendered legacy trace is additionally pinned to a golden file, so an
//! accidental edit of the frozen copy cannot silently re-baseline the
//! comparison. Regenerate with
//! `REGEMU_REGEN_GOLDEN=1 cargo test --test scenario_golden` after an
//! *intentional* semantic change (and say so in the PR).

use regemu::prelude::*;
use std::fmt::Write as _;

const GOLDEN_PATH: &str = "tests/golden/scenario_history.txt";

/// The pre-`Scenario` runner, frozen. Do not "improve" this code: its whole
/// value is being exactly the old behaviour.
mod legacy {
    use regemu::prelude::*;
    use std::collections::HashMap;

    pub struct LegacyConfig {
        pub seed: u64,
        pub crash_plan: CrashPlan,
        pub max_steps_per_op: u64,
        pub drain: bool,
    }

    pub fn run_workload(
        emulation: &dyn Emulation,
        workload: &Workload,
        config: &LegacyConfig,
    ) -> Result<Simulation, SimError> {
        let params = emulation.params();
        let mut sim = emulation.build_simulation();
        let mut driver = FairDriver::new(config.seed).with_crash_plan(config.crash_plan.clone());

        // Register one client per writer identity and per reader slot, lazily.
        let mut writer_clients: HashMap<usize, ClientId> = HashMap::new();
        let mut reader_clients: HashMap<usize, ClientId> = HashMap::new();
        let mut outstanding: Vec<(ClientId, HighOpId)> = Vec::new();

        for step in workload.ops() {
            let client = match step.issuer {
                Issuer::Writer(i) => *writer_clients.entry(i % params.k).or_insert_with(|| {
                    sim.register_client(emulation.writer_protocol(i % params.k))
                }),
                Issuer::Reader(i) => *reader_clients
                    .entry(i)
                    .or_insert_with(|| sim.register_client(emulation.reader_protocol())),
            };
            // A client's schedule must be sequential: wait for its previous
            // operation if it is still running.
            if !sim.is_client_idle(client) {
                if let Some((_, pending)) = outstanding.iter().find(|(c, _)| *c == client).copied()
                {
                    driver.run_until_complete(&mut sim, pending, config.max_steps_per_op)?;
                }
            }
            outstanding.retain(|(_, op)| sim.result_of(*op).is_none());

            let high_op = sim.invoke(client, step.op)?;
            if step.sequential {
                driver.run_until_complete(&mut sim, high_op, config.max_steps_per_op)?;
            } else {
                outstanding.push((client, high_op));
            }
        }

        // Finish whatever is still in flight.
        for (_, high_op) in outstanding.drain(..) {
            driver.run_until_complete(&mut sim, high_op, config.max_steps_per_op)?;
        }
        if config.drain {
            driver.run_until_quiescent(&mut sim, config.max_steps_per_op)?;
        }
        Ok(sim)
    }
}

/// One configuration of the replay matrix.
struct Case {
    label: &'static str,
    params: Params,
    emulation: EmulationKind,
    workload: Workload,
    seed: u64,
    crash: bool,
    drain: bool,
}

fn matrix() -> Vec<Case> {
    let p214 = Params::new(2, 1, 4).unwrap();
    let p325 = Params::new(3, 2, 5).unwrap();
    let mut cases = Vec::new();
    for kind in EmulationKind::ALL {
        cases.push(Case {
            label: "write-seq",
            params: p214,
            emulation: kind,
            workload: Workload::write_sequential(2, 2, true),
            seed: 11,
            crash: false,
            drain: false,
        });
        cases.push(Case {
            label: "mixed+crash",
            params: p214,
            emulation: kind,
            workload: Workload::random_mixed(2, 2, 10, 0.5, 23),
            seed: 23,
            crash: true,
            drain: false,
        });
        cases.push(Case {
            label: "concurrent+drain",
            params: p214,
            emulation: kind,
            workload: Workload::concurrent_read_write(2, 2),
            seed: 7,
            crash: false,
            drain: true,
        });
    }
    cases.push(Case {
        label: "read-heavy-kf",
        params: p325,
        emulation: EmulationKind::SpaceOptimal,
        workload: Workload::read_heavy(3, 2, 3, 2),
        seed: 41,
        crash: false,
        drain: false,
    });
    cases
}

fn crash_plan_for(case: &Case) -> CrashPlan {
    if case.crash {
        CrashPlan::none().crash_at(5, ServerId::new(case.params.n - 1))
    } else {
        CrashPlan::none()
    }
}

fn render(sim: &Simulation, header: &str, out: &mut String) {
    writeln!(out, "== {header} ==").unwrap();
    for event in sim.history().events() {
        writeln!(out, "{event}").unwrap();
    }
    let metrics = RunMetrics::capture(sim);
    writeln!(
        out,
        "metrics: consumption={} covered={} contention={} triggers={} responses={}",
        metrics.resource_consumption(),
        metrics.covered_count(),
        metrics.point_contention,
        metrics.low_level_triggers,
        metrics.low_level_responses,
    )
    .unwrap();
}

fn header(case: &Case) -> String {
    format!(
        "{} {} {} seed={} crash={} drain={}",
        case.emulation, case.params, case.label, case.seed, case.crash, case.drain
    )
}

fn legacy_trace() -> String {
    let mut out = String::new();
    for case in matrix() {
        let emulation = case.emulation.build(case.params);
        let config = legacy::LegacyConfig {
            seed: case.seed,
            crash_plan: crash_plan_for(&case),
            max_steps_per_op: 100_000,
            drain: case.drain,
        };
        let sim = legacy::run_workload(emulation.as_ref(), &case.workload, &config)
            .unwrap_or_else(|e| panic!("legacy {}: {e}", header(&case)));
        render(&sim, &header(&case), &mut out);
    }
    out
}

fn scenario_trace() -> String {
    let mut out = String::new();
    for case in matrix() {
        let mut scenario = Scenario::new(case.params)
            .emulation(case.emulation)
            .workload_steps(case.workload.clone())
            .scheduler(SchedulerSpec::Fair)
            .crash_plan(crash_plan_for(&case))
            .check(ConsistencyCheck::None)
            .seed(case.seed);
        if case.drain {
            scenario = scenario.drain();
        }
        let mut run = scenario.build();
        run.run()
            .unwrap_or_else(|e| panic!("scenario {}: {e}", header(&case)));
        render(run.sim(), &header(&case), &mut out);
    }
    out
}

#[test]
fn scenario_runs_replay_the_legacy_runner_byte_identically() {
    let legacy = legacy_trace();
    let scenario = scenario_trace();
    assert!(
        legacy == scenario,
        "Scenario-driven history diverged from the pre-redesign runner\n\
         (first difference at byte {})",
        legacy
            .bytes()
            .zip(scenario.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| legacy.len().min(scenario.len())),
    );
}

#[test]
fn legacy_trace_matches_the_recorded_golden_file() {
    let trace = legacy_trace();
    if std::env::var_os("REGEMU_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all("tests/golden").expect("create golden dir");
        std::fs::write(GOLDEN_PATH, &trace).expect("write golden trace");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH).expect(
        "golden trace missing; regenerate with REGEMU_REGEN_GOLDEN=1 cargo test --test scenario_golden",
    );
    assert!(
        trace == golden,
        "the frozen legacy runner no longer reproduces its recorded trace\n\
         (first difference at byte {})",
        trace
            .bytes()
            .zip(golden.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| trace.len().min(golden.len())),
    );
}

#[test]
fn scenario_reports_match_the_legacy_runner() {
    // The `run_workload`/`RunConfig` shims are gone; the measured surface a
    // shim caller saw (high-level schedule + metrics) must now be reachable
    // through `Scenario::run` alone, byte-compatible with the old runner.
    for case in matrix().into_iter().take(4) {
        let mut scenario = Scenario::new(case.params)
            .emulation(case.emulation)
            .workload_steps(case.workload.clone())
            .crash_plan(crash_plan_for(&case))
            .check(ConsistencyCheck::None)
            .seed(case.seed);
        if case.drain {
            scenario = scenario.drain();
        }
        let report = scenario
            .run()
            .unwrap_or_else(|e| panic!("scenario {}: {e}", header(&case)));
        let legacy_config = legacy::LegacyConfig {
            seed: case.seed,
            crash_plan: crash_plan_for(&case),
            max_steps_per_op: 100_000,
            drain: case.drain,
        };
        let sim = legacy::run_workload(
            case.emulation.build(case.params).as_ref(),
            &case.workload,
            &legacy_config,
        )
        .unwrap_or_else(|e| panic!("legacy {}: {e}", header(&case)));
        assert_eq!(
            report.history.ops(),
            HighHistory::from_run(sim.history()).ops(),
            "{}",
            header(&case)
        );
        assert_eq!(
            report.metrics,
            RunMetrics::capture(&sim),
            "{}",
            header(&case)
        );
        assert!(report.is_fully_checked());
    }
}

#[test]
fn bounded_recording_replays_the_full_recording_byte_identically() {
    // Recording changes what is retained, never what happens: the high-level
    // schedule and metrics of Digest/Ring runs must equal the Full run's for
    // every matrix configuration.
    for case in matrix() {
        let mut scenario = Scenario::new(case.params)
            .emulation(case.emulation)
            .workload_steps(case.workload.clone())
            .crash_plan(crash_plan_for(&case))
            .check(ConsistencyCheck::None)
            .seed(case.seed);
        if case.drain {
            scenario = scenario.drain();
        }
        let full = scenario
            .run()
            .unwrap_or_else(|e| panic!("full {}: {e}", header(&case)));
        for mode in [RecordingModeSpec::Digest, RecordingModeSpec::Ring(256)] {
            let bounded = scenario
                .clone()
                .recording(mode)
                .run()
                .unwrap_or_else(|e| panic!("{mode} {}: {e}", header(&case)));
            assert_eq!(
                bounded.history.ops(),
                full.history.ops(),
                "{mode} {}",
                header(&case)
            );
            assert_eq!(bounded.metrics, full.metrics, "{mode} {}", header(&case));
        }
    }
}
