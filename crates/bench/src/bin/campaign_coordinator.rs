//! `campaign_coordinator` — drive a sharded multi-process sweep campaign
//! over a spool directory, with deterministic merge and resume.
//!
//! ```text
//! cargo run --release -p regemu-bench --bin campaign_coordinator -- \
//!     --spool DIR [OPTIONS]
//!
//! OPTIONS (campaign):
//!   --spool DIR         spool directory (manifest, config, shard reports)
//!   --shards N          shard count for a fresh campaign (default 4;
//!                       resuming keeps the existing manifest's plan)
//!   --workers M         concurrent worker processes (default 2)
//!   --retries R         attempt budget per shard (default 3)
//!   --worker-threads N  sweep threads per worker (default 1)
//!   --worker-bin PATH   campaign_worker binary (default: next to this one)
//!   --in-process        run shards inside this process instead of spawning
//!   --exit-after N      stop after completing N shards (kill simulation;
//!                       rerun the same command to resume)
//!   --merge-only        only merge existing shard reports, run nothing
//!   --quiet             no progress lines
//!   --json PATH         write the merged report as JSON (- for stdout)
//!   --csv PATH          write the merged report as CSV (- for stdout)
//!
//! OPTIONS (sweep config, for a fresh spool):
//!   --quick --threads --seeds --schedulers --crash-plans --crash-f
//!   --recording          (same meaning as in sweep_grid)
//! ```
//!
//! The merged report is **byte-identical** to a single-process `sweep_grid`
//! run of the same config, for any shard count, worker count or completion
//! order. Interrupting the campaign (Ctrl-C, kill, `--exit-after`) loses at
//! most the shards in flight: rerunning the same command resumes from the
//! manifest and re-runs only incomplete shards.

use regemu_bench::cli::{set_quiet, write_output, ConfigFlags, CONFIG_USAGE};
use regemu_bench::info;
use regemu_workloads::campaign::{
    config_fingerprint, load_config, merge_shards, run_campaign, CampaignOptions, WorkerMode,
};
use std::path::PathBuf;
use std::time::Instant;

fn fail(msg: &str) -> ! {
    eprintln!("campaign_coordinator: {msg}");
    eprintln!(
        "usage: campaign_coordinator --spool DIR [--shards N] [--workers M] [--retries R] \
         [--worker-threads N] [--worker-bin PATH] [--in-process] [--exit-after N] \
         [--merge-only] [--quiet] [--json PATH] [--csv PATH] {CONFIG_USAGE}"
    );
    std::process::exit(2);
}

fn default_worker_bin() -> PathBuf {
    let Ok(me) = std::env::current_exe() else {
        return PathBuf::from("campaign_worker");
    };
    let mut bin = me;
    bin.set_file_name(format!("campaign_worker{}", std::env::consts::EXE_SUFFIX));
    bin
}

fn main() {
    let mut flags = ConfigFlags::default();
    let mut any_config_flag = false;
    let mut spool: Option<PathBuf> = None;
    let mut shards: usize = 4;
    let mut workers: usize = 2;
    let mut retries: u32 = 3;
    let mut worker_threads: Option<usize> = None;
    let mut worker_bin: Option<PathBuf> = None;
    let mut in_process = false;
    let mut exit_after: Option<usize> = None;
    let mut merge_only = false;
    let mut quiet = false;
    let mut json_out: Option<String> = None;
    let mut csv_out: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match flags.accept(&arg, &mut args) {
            Ok(true) => {
                any_config_flag = true;
                continue;
            }
            Ok(false) => {}
            Err(e) => fail(&e),
        }
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
        };
        let parse_usize = |flag: &str, v: String| -> usize {
            v.parse()
                .unwrap_or_else(|_| fail(&format!("invalid {flag} value {v:?}")))
        };
        match arg.as_str() {
            "--spool" => spool = Some(PathBuf::from(value("--spool"))),
            "--shards" => shards = parse_usize("--shards", value("--shards")).max(1),
            "--workers" => workers = parse_usize("--workers", value("--workers")).max(1),
            "--retries" => {
                retries = value("--retries")
                    .parse()
                    .unwrap_or_else(|_| fail("invalid --retries value"));
            }
            "--worker-threads" => {
                worker_threads = Some(parse_usize("--worker-threads", value("--worker-threads")));
            }
            "--worker-bin" => worker_bin = Some(PathBuf::from(value("--worker-bin"))),
            "--in-process" => in_process = true,
            "--exit-after" => {
                exit_after = Some(parse_usize("--exit-after", value("--exit-after")));
            }
            "--merge-only" => merge_only = true,
            "--quiet" => {
                quiet = true;
                set_quiet();
            }
            "--json" => json_out = Some(value("--json")),
            "--csv" => csv_out = Some(value("--csv")),
            other => fail(&format!("unknown option {other:?}")),
        }
    }
    let spool = spool.unwrap_or_else(|| fail("--spool is required"));

    let emit = |report: &regemu_workloads::SweepReport| {
        if let Some(path) = &json_out {
            write_output(path, &report.to_json(), "JSON");
        }
        if let Some(path) = &csv_out {
            write_output(path, &report.to_csv(), "CSV");
        }
    };

    if merge_only {
        let report = merge_shards(&spool).unwrap_or_else(|e| {
            eprintln!("campaign_coordinator: merge failed: {e}");
            std::process::exit(1);
        });
        info!("merged {} cases from existing shard reports", report.len());
        emit(&report);
        if !report.all_consistent() {
            std::process::exit(1);
        }
        return;
    }

    // A resumed spool dictates the config; a fresh one takes it from the
    // CLI flags. Passing config flags that contradict an existing spool is
    // an error, not a silent re-run of the old grid.
    let flag_threads = flags.threads();
    let config = match load_config(&spool) {
        Ok(config) => {
            if any_config_flag {
                let cli = flags.into_config().unwrap_or_else(|e| fail(&e));
                if config_fingerprint(&cli) != config_fingerprint(&config) {
                    fail(&format!(
                        "spool {} was created for a different sweep config than the flags \
                         passed; drop the config flags to resume it, or use a fresh --spool",
                        spool.display()
                    ));
                }
            }
            info!(
                "campaign_coordinator: resuming spool {} ({} cases)",
                spool.display(),
                config.case_count()
            );
            config
        }
        Err(_) => flags.into_config().unwrap_or_else(|e| fail(&e)),
    };

    let mut options = CampaignOptions::new(&spool);
    options.shards = shards;
    options.workers = workers;
    options.max_attempts = retries.max(1);
    // --worker-threads wins; a plain --threads (shared with sweep_grid)
    // becomes the per-worker thread count rather than being dropped.
    options.worker_threads = worker_threads.or(flag_threads).unwrap_or(1);
    options.worker = if in_process {
        WorkerMode::InProcess
    } else {
        let bin = worker_bin.unwrap_or_else(default_worker_bin);
        if !bin.exists() {
            fail(&format!(
                "worker binary {} not found; build it (cargo build -p regemu-bench) or pass \
                 --worker-bin / --in-process",
                bin.display()
            ));
        }
        WorkerMode::Spawn(bin)
    };
    options.exit_after = exit_after;
    options.quiet = quiet;

    let started = Instant::now();
    let outcome = run_campaign(&config, &options).unwrap_or_else(|e| {
        eprintln!("campaign_coordinator: {e}");
        std::process::exit(1);
    });
    let elapsed = started.elapsed();
    let done = if outcome.report.is_some() {
        outcome.shards_total
    } else {
        outcome.shards_run + outcome.shards_reused
    };
    info!(
        "campaign: {done}/{} shards done in {elapsed:.2?} ({} run now, {} reused, {} retried)",
        outcome.shards_total, outcome.shards_run, outcome.shards_reused, outcome.retries,
    );

    match outcome.report {
        Some(report) => {
            let consistent = report.results().iter().filter(|r| r.consistent).count();
            info!(
                "merged {} cases: {consistent}/{} consistent",
                report.len(),
                report.len()
            );
            emit(&report);
            if !report.all_consistent() {
                std::process::exit(1);
            }
        }
        None => {
            info!("campaign stopped early (--exit-after); rerun the same command to resume");
            // Distinguish "paused" from success so scripts notice.
            std::process::exit(3);
        }
    }
}
