//! The recorded history of a run.
//!
//! [`History`] is an append-only event log plus convenience queries used by
//! the metrics module, the consistency checkers and the lower-bound
//! adversary. It intentionally stores the raw [`Event`] stream rather than a
//! digested form, so that every consumer (linearizability checker,
//! WS-Regularity checker, covering analysis, point-contention analysis) can
//! derive exactly the view it needs.

use crate::event::Event;
use crate::ids::{ClientId, HighOpId, ObjectId, OpId, Time};
use crate::op::{HighOp, HighResponse};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A completed or pending high-level operation extracted from a history.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HighInterval {
    /// Identifier of the high-level operation.
    pub id: HighOpId,
    /// The invoking client.
    pub client: ClientId,
    /// The operation.
    pub op: HighOp,
    /// Invocation time.
    pub invoked_at: Time,
    /// Return time and response, or `None` if the operation is pending.
    pub returned: Option<(Time, HighResponse)>,
}

impl HighInterval {
    /// Returns `true` if the operation completed.
    pub fn is_complete(&self) -> bool {
        self.returned.is_some()
    }

    /// Returns `true` if `self` precedes `other` (returned before the other
    /// was invoked), i.e. `self ≺ other` in the schedule's real-time order.
    pub fn precedes(&self, other: &HighInterval) -> bool {
        match self.returned {
            Some((t, _)) => t < other.invoked_at,
            None => false,
        }
    }

    /// Returns `true` if the two operations are concurrent (neither precedes
    /// the other).
    pub fn concurrent_with(&self, other: &HighInterval) -> bool {
        !self.precedes(other) && !other.precedes(self)
    }
}

/// A growable bitset over dense indices (object ids are indices), used for
/// the touched/written digests: marking is a word-indexed store — no tree
/// rebalancing or node allocation on the simulator's per-trigger hot path.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
struct IndexBitSet {
    words: Vec<u64>,
}

impl IndexBitSet {
    fn insert(&mut self, index: usize) {
        let word = index / 64;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        self.words[word] |= 1u64 << (index % 64);
    }

    fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(w, bits)| {
            let mut bits = *bits;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let bit = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(w * 64 + bit)
            })
        })
    }
}

/// Append-only record of every action taken in a run.
///
/// Alongside the raw event log, `History` maintains *incremental digests* —
/// the high-level intervals, the touched/written object sets, running
/// trigger/respond counters and the point contention — updated in O(1)
/// amortized time per [`History::push`]. The query methods below therefore
/// never re-scan the event log, which keeps
/// [`crate::metrics::RunMetrics::capture`] cheap even at the end of
/// million-step runs. (The exception is [`History::pending_low_level`],
/// a debugging aid that still scans on demand so the hot path does not pay
/// for a churning id set.)
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct History {
    events: Vec<Event>,
    intervals: Vec<HighInterval>,
    /// Position of each high-level operation in `intervals` (first wins when
    /// an id is invoked twice, matching the previous scan-based extraction).
    interval_index: BTreeMap<HighOpId, usize>,
    touched: IndexBitSet,
    written: IndexBitSet,
    trigger_count: u64,
    respond_count: u64,
    /// Clients with a high-level operation currently in progress.
    open_clients: BTreeSet<ClientId>,
    max_contention: usize,
}

impl History {
    /// Creates an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event and updates the digests.
    pub fn push(&mut self, event: Event) {
        match event {
            Event::Invoke {
                time,
                client,
                high_op,
                op,
            } => {
                let idx = self.intervals.len();
                self.intervals.push(HighInterval {
                    id: high_op,
                    client,
                    op,
                    invoked_at: time,
                    returned: None,
                });
                self.interval_index.entry(high_op).or_insert(idx);
                self.open_clients.insert(client);
                self.max_contention = self.max_contention.max(self.open_clients.len());
            }
            Event::Return {
                time,
                client,
                high_op,
                response,
            } => {
                if let Some(&idx) = self.interval_index.get(&high_op) {
                    self.intervals[idx].returned = Some((time, response));
                }
                self.open_clients.remove(&client);
            }
            Event::Trigger { object, op, .. } => {
                self.trigger_count += 1;
                self.touched.insert(object.index());
                if op.is_write() {
                    self.written.insert(object.index());
                }
            }
            Event::Respond { .. } => {
                self.respond_count += 1;
            }
            Event::ServerCrash { .. } | Event::ClientCrash { .. } => {}
        }
        self.events.push(event);
    }

    /// All events, in the order they occurred.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All high-level operation intervals, in invocation order, borrowed from
    /// the incrementally-maintained digest.
    pub fn intervals(&self) -> &[HighInterval] {
        &self.intervals
    }

    /// Extracts all high-level operation intervals, in invocation order.
    ///
    /// Prefer [`History::intervals`] when a borrow suffices; this method is
    /// kept for callers that need an owned copy.
    pub fn high_intervals(&self) -> Vec<HighInterval> {
        self.intervals.clone()
    }

    /// The set of base objects on which at least one low-level operation was
    /// triggered — the *resource consumption* of the run (Section 2).
    pub fn touched_objects(&self) -> BTreeSet<ObjectId> {
        self.touched.iter().map(ObjectId::new).collect()
    }

    /// The set of base objects on which at least one low-level *write-class*
    /// operation was triggered.
    pub fn written_objects(&self) -> BTreeSet<ObjectId> {
        self.written.iter().map(ObjectId::new).collect()
    }

    /// Number of low-level operations triggered so far.
    pub fn trigger_count(&self) -> u64 {
        self.trigger_count
    }

    /// Number of low-level operations that responded so far.
    pub fn respond_count(&self) -> u64 {
        self.respond_count
    }

    /// Identifiers of low-level operations that were triggered but have not
    /// responded in this history (pending operations).
    ///
    /// Computed on demand by scanning the event log (O(events)): the live
    /// pending set is tracked by [`crate::sim::Simulation`] itself, so the
    /// recording hot path does not maintain a second, churning id set just
    /// for this query.
    pub fn pending_low_level(&self) -> BTreeSet<OpId> {
        let mut pending = BTreeSet::new();
        for e in &self.events {
            match e {
                Event::Trigger { op_id, .. } => {
                    pending.insert(*op_id);
                }
                Event::Respond { op_id, .. } => {
                    pending.remove(op_id);
                }
                _ => {}
            }
        }
        pending
    }

    /// Returns `true` if no two high-level *writes* are concurrent — the
    /// run is *write-sequential* (Section 2).
    pub fn is_write_sequential(&self) -> bool {
        let writes: Vec<&HighInterval> = self
            .intervals
            .iter()
            .filter(|iv| iv.op.is_write())
            .collect();
        for (i, a) in writes.iter().enumerate() {
            for b in writes.iter().skip(i + 1) {
                if a.concurrent_with(b) {
                    return false;
                }
            }
        }
        true
    }

    /// Returns `true` if the run is write-only (no high-level reads invoked).
    pub fn is_write_only(&self) -> bool {
        self.intervals.iter().all(|iv| iv.op.is_write())
    }

    /// Maximum number of clients with an incomplete high-level operation at
    /// any single point of the run — the *point contention* (Appendix C).
    pub fn point_contention(&self) -> usize {
        self.max_contention
    }

    /// The largest time stamp recorded, i.e. the length of the run in steps.
    pub fn end_time(&self) -> Time {
        self.events.last().map(Event::time).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{BaseOp, BaseResponse};
    use crate::value::Value;

    fn mk_history() -> History {
        let mut h = History::new();
        // c0: WRITE(1) [t1..t4] touching b0 (write, responds) and b1 (write, pending)
        h.push(Event::Invoke {
            time: 1,
            client: ClientId::new(0),
            high_op: HighOpId::new(0),
            op: HighOp::Write(1),
        });
        h.push(Event::Trigger {
            time: 2,
            client: ClientId::new(0),
            high_op: Some(HighOpId::new(0)),
            op_id: OpId::new(0),
            object: ObjectId::new(0),
            op: BaseOp::Write(Value::new(1, 1)),
        });
        h.push(Event::Trigger {
            time: 2,
            client: ClientId::new(0),
            high_op: Some(HighOpId::new(0)),
            op_id: OpId::new(1),
            object: ObjectId::new(1),
            op: BaseOp::Write(Value::new(1, 1)),
        });
        h.push(Event::Respond {
            time: 3,
            client: ClientId::new(0),
            op_id: OpId::new(0),
            object: ObjectId::new(0),
            response: BaseResponse::WriteAck,
        });
        h.push(Event::Return {
            time: 4,
            client: ClientId::new(0),
            high_op: HighOpId::new(0),
            response: HighResponse::WriteAck,
        });
        // c1: READ() [t5..] pending, triggers read on b0
        h.push(Event::Invoke {
            time: 5,
            client: ClientId::new(1),
            high_op: HighOpId::new(1),
            op: HighOp::Read,
        });
        h.push(Event::Trigger {
            time: 6,
            client: ClientId::new(1),
            high_op: Some(HighOpId::new(1)),
            op_id: OpId::new(2),
            object: ObjectId::new(0),
            op: BaseOp::Read,
        });
        h
    }

    #[test]
    fn high_intervals_and_precedence() {
        let h = mk_history();
        let ivs = h.high_intervals();
        assert_eq!(ivs.len(), 2);
        assert!(ivs[0].is_complete());
        assert!(!ivs[1].is_complete());
        assert!(ivs[0].precedes(&ivs[1]));
        assert!(!ivs[1].precedes(&ivs[0]));
        assert!(!ivs[0].concurrent_with(&ivs[1]));
    }

    #[test]
    fn touched_and_pending_sets() {
        let h = mk_history();
        let touched = h.touched_objects();
        assert!(touched.contains(&ObjectId::new(0)));
        assert!(touched.contains(&ObjectId::new(1)));
        assert_eq!(touched.len(), 2);
        assert_eq!(h.written_objects().len(), 2);
        let pending = h.pending_low_level();
        assert!(pending.contains(&OpId::new(1)));
        assert!(pending.contains(&OpId::new(2)));
        assert!(!pending.contains(&OpId::new(0)));
    }

    #[test]
    fn write_sequential_and_write_only_detection() {
        let h = mk_history();
        assert!(h.is_write_sequential());
        assert!(!h.is_write_only());

        // Two overlapping writes are not write-sequential.
        let mut h2 = History::new();
        h2.push(Event::Invoke {
            time: 1,
            client: ClientId::new(0),
            high_op: HighOpId::new(0),
            op: HighOp::Write(1),
        });
        h2.push(Event::Invoke {
            time: 2,
            client: ClientId::new(1),
            high_op: HighOpId::new(1),
            op: HighOp::Write(2),
        });
        h2.push(Event::Return {
            time: 3,
            client: ClientId::new(0),
            high_op: HighOpId::new(0),
            response: HighResponse::WriteAck,
        });
        assert!(!h2.is_write_sequential());
        assert!(h2.is_write_only());
    }

    #[test]
    fn point_contention_counts_concurrent_high_ops() {
        let h = mk_history();
        assert_eq!(h.point_contention(), 1);
        let mut h2 = History::new();
        for i in 0..3u64 {
            h2.push(Event::Invoke {
                time: i,
                client: ClientId::new(i as usize),
                high_op: HighOpId::new(i),
                op: HighOp::Write(i),
            });
        }
        h2.push(Event::Return {
            time: 4,
            client: ClientId::new(0),
            high_op: HighOpId::new(0),
            response: HighResponse::WriteAck,
        });
        assert_eq!(h2.point_contention(), 3);
    }

    #[test]
    fn end_time_and_len() {
        let h = mk_history();
        assert_eq!(h.end_time(), 6);
        assert_eq!(h.len(), 7);
        assert!(!h.is_empty());
        assert!(History::new().is_empty());
    }
}
