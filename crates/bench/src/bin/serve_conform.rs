//! `serve_conform` — merge live conformance logs and run the checkers.
//!
//! ```text
//! cargo run --release -p regemu-bench --bin serve_conform -- \
//!     --log clients.conform --log node0.conform --log node1.conform \
//!     --log node2.conform [--check ws-safe]
//! ```
//!
//! Loads every `--log` (client `invoke`/`return` logs and server `respond`
//! logs), merges them into one history ordered by Lamport stamp — pending
//! invocations from timed-out or killed clients stay pending, exactly like
//! crashed simulator clients — and replays it through both the offline
//! checker and the streaming checker for the chosen condition.
//!
//! Exit status: `0` when both checkers accept, `2` when either reports a
//! violation, `3` when the two checkers disagree (a checker bug, worth a
//! report), `1` on errors, `2` on usage errors.

use regemu_workloads::conform::conform_verdict;
use regemu_workloads::runner::ConsistencyCheck;
use std::path::PathBuf;

fn fail(msg: &str) -> ! {
    eprintln!("serve_conform: {msg}");
    eprintln!("usage: serve_conform --log FILE... [--check none|ws-safe|ws-regular|atomic]");
    std::process::exit(2);
}

fn main() {
    let mut logs: Vec<PathBuf> = Vec::new();
    let mut check = ConsistencyCheck::WsSafe;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--log" => logs.push(PathBuf::from(value("--log"))),
            "--check" => {
                let v = value("--check");
                check = ConsistencyCheck::from_name(&v)
                    .unwrap_or_else(|| fail(&format!("unknown check {v:?}")));
            }
            other => fail(&format!("unknown option {other:?}")),
        }
    }
    if logs.is_empty() {
        fail("at least one --log is required");
    }

    let verdict = match conform_verdict(&logs, check) {
        Ok(verdict) => verdict,
        Err(e) => {
            eprintln!("serve_conform: {e}");
            std::process::exit(1);
        }
    };
    println!("{verdict}");
    if !verdict.agrees() {
        eprintln!("serve_conform: offline and streaming checkers disagree");
        std::process::exit(3);
    }
    if !verdict.is_consistent() {
        std::process::exit(2);
    }
}
