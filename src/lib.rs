//! # regemu — fault-tolerant register emulations and their space complexity
//!
//! A full reproduction of Chockler & Spiegelman, *Space Complexity of
//! Fault-Tolerant Register Emulations* (PODC 2017), as a Rust workspace. This
//! facade crate re-exports the public API of every sub-crate:
//!
//! * [`fpsm`] — the asynchronous fault-prone shared-memory simulator
//!   (servers, base objects, crash faults, explicit environment control);
//! * [`spec`] — consistency-condition checkers (atomicity, WS-Regularity,
//!   WS-Safety);
//! * [`bounds`] — the paper's closed-form space bounds (Table 1 and the
//!   appendix theorems);
//! * [`core`] — the emulation algorithms (Algorithm 2, ABD over
//!   max-registers / CAS / register banks, shared-memory max-registers);
//! * [`adversary`] — the executable lower-bound adversary (`Ad_i`, Lemma 1
//!   campaigns, the partition argument);
//! * [`workloads`] — the [`Scenario`] pipeline, workload generators and
//!   sweeps;
//! * [`campaign`] — sharded multi-process sweep campaigns over a spool
//!   directory, with deterministic merge and resume;
//! * [`frontier`] — empirical space-complexity frontier campaigns: measured
//!   peak coverage and occupancy judged against the paper's Table 1 bounds
//!   ([`frontier::FrontierReport`]);
//! * [`fuzz`] — coverage-guided schedule fuzzing: record/replay traces
//!   ([`fuzz::RecordedSchedule`]), corpus exploration ([`fuzz::Fuzzer`]) and
//!   automatic failure shrinking ([`fuzz::shrink_failure`]);
//! * [`serve`] — the live replicated-register service: the same client and
//!   server state machines over in-process channels or TCP
//!   ([`serve::LiveClient`], [`serve::serve_tcp`]), with load generation and
//!   simulator-backed conformance checking of recorded histories;
//! * [`obs`] — the zero-dependency telemetry registry (counters, gauges,
//!   histograms, scope timers, renderable [`obs::Snapshot`]s) every
//!   subsystem reports through, under the non-perturbation contract:
//!   telemetry never changes behaviour or deterministic artifacts.
//!
//! See the `examples/` directory for runnable end-to-end scenarios and the
//! `regemu-bench` crate for the binaries that regenerate every table and
//! figure of the paper.
//!
//! ## Quick start
//!
//! A [`Scenario`] is one typed value that fully determines a run — the
//! construction, the workload, the scheduler, the crash plan, the
//! consistency check and the seed:
//!
//! ```
//! use regemu::prelude::*;
//!
//! // An f-tolerant 3-writer register from plain read/write registers,
//! // using the paper's space-optimal construction (Algorithm 2), under a
//! // fair scheduler with the full crash budget injected mid-run.
//! let params = Params::new(3, 1, 5)?;
//! let report = Scenario::new(params)
//!     .emulation(EmulationKind::SpaceOptimal)
//!     .workload(WorkloadSpec::WriteSequential { rounds: 1, read_after_each: true })
//!     .scheduler(SchedulerSpec::Fair)
//!     .crashes(CrashPlanSpec::CrashF)
//!     .check(ConsistencyCheck::WsRegular)
//!     .seed(1)
//!     .run()?;
//! assert!(report.is_consistent());
//! assert!(report.metrics.resource_consumption() <= register_upper_bound(params));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

#[doc = include_str!("../docs/MODEL.md")]
pub mod model {}

/// The project README, included verbatim so its Rust snippets (quickstart,
/// bounded-memory recording) are compiled and executed as doctests by
/// `cargo test --doc` and cannot drift from the code.
#[doc = include_str!("../README.md")]
pub mod readme {}

pub use regemu_adversary as adversary;
pub use regemu_bounds as bounds;
pub use regemu_core as core;
pub use regemu_fpsm as fpsm;
pub use regemu_obs as obs;
pub use regemu_serve as serve;
pub use regemu_spec as spec;
pub use regemu_workloads as workloads;

pub use regemu_workloads::campaign;
pub use regemu_workloads::frontier;
pub use regemu_workloads::fuzz;
pub use regemu_workloads::{Scenario, ScenarioRun};

/// One-stop import for applications and examples.
pub mod prelude {
    pub use regemu_adversary::prelude::*;
    pub use regemu_bounds::{
        cas_bound, max_register_bound, register_lower_bound, register_upper_bound, Params,
    };
    pub use regemu_core::prelude::*;
    pub use regemu_fpsm::prelude::*;
    pub use regemu_spec::prelude::*;
    pub use regemu_workloads::prelude::*;
}
