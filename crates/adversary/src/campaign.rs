//! The full Lemma 1 construction: `k` adversary-driven sequential writes.
//!
//! A [`LowerBoundCampaign`] runs `k` high-level writes by `k` distinct fresh
//! clients against an emulation, each extension scheduled by the `Ad_i`
//! adversary of [`crate::adi`]. For emulations built from fault-prone
//! read/write registers the campaign reproduces the behaviour the lower bound
//! (Theorem 1) is built on:
//!
//! * after the `i`-th write, at least `i·f` registers are covered
//!   (Lemma 1(a)),
//! * none of the covered registers lives on a server of the protected set `F`
//!   (Lemma 1(b)),
//! * the point contention stays 1 throughout, yet the resource consumption
//!   grows linearly in `k` (Theorem 8),
//! * at `n = 2f + 1`, the per-server occupancy reaches `k` (Theorem 6).
//!
//! For max-register/CAS emulations the same campaign shows the *contrast*:
//! coverage stays bounded by `2f + 1` no matter how many writers run.

use crate::adi::{AdversaryIteration, IterationOutcome};
use regemu_core::Emulation;
use regemu_fpsm::{ClientId, RunMetrics, ServerId, SimError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Per-iteration summary recorded by the campaign.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct IterationReport {
    /// Iteration number `i` (1-based).
    pub iteration: usize,
    /// Total number of covered registers after the iteration, `|Cov(t_i)|`.
    pub covered: usize,
    /// Registers newly covered by this iteration.
    pub newly_covered: usize,
    /// Whether the coverage avoids the protected set `F`.
    pub coverage_avoids_protected: bool,
    /// Resource consumption so far (distinct base objects touched).
    pub resource_consumption: usize,
    /// Point contention observed so far (1 in a write-sequential campaign).
    pub point_contention: usize,
    /// Delivery steps the adversary spent on this iteration.
    pub steps: u64,
}

/// The result of a full campaign.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Name of the emulation under test.
    pub emulation: String,
    /// `k`, `f`, `n` of the emulation.
    pub k: usize,
    /// Failure threshold `f`.
    pub f: usize,
    /// Number of servers `n`.
    pub n: usize,
    /// The protected set `F` used by the adversary.
    pub protected: Vec<usize>,
    /// Per-iteration summaries.
    pub iterations: Vec<IterationReport>,
    /// Final number of covered registers.
    pub final_covered: usize,
    /// Final resource consumption.
    pub final_resource_consumption: usize,
    /// Per-server count of touched base objects at the end of the campaign.
    pub touched_per_server: Vec<(usize, usize)>,
    /// Per-server count of covered base objects at the end of the campaign.
    pub covered_per_server: Vec<(usize, usize)>,
}

impl CampaignReport {
    /// Lemma 1(a): after the `i`-th iteration at least `i·f` registers are
    /// covered.
    pub fn satisfies_coverage_growth(&self) -> bool {
        self.iterations
            .iter()
            .all(|it| it.covered >= it.iteration * self.f)
    }

    /// Lemma 1(b): coverage never touches the protected set.
    pub fn coverage_always_avoids_protected(&self) -> bool {
        self.iterations
            .iter()
            .all(|it| it.coverage_avoids_protected)
    }

    /// Theorem 8: point contention stayed 1 while resources grew.
    pub fn is_write_sequential_evidence(&self) -> bool {
        self.iterations.iter().all(|it| it.point_contention <= 1)
    }

    /// The maximum number of covered registers hosted by a single server
    /// (used for the Theorem 6 audit at `n = 2f + 1`).
    pub fn max_covered_on_one_server(&self) -> usize {
        self.covered_per_server
            .iter()
            .map(|(_, c)| *c)
            .max()
            .unwrap_or(0)
    }
}

/// Runs the Lemma 1 construction against an emulation.
#[derive(Debug)]
pub struct LowerBoundCampaign {
    protected: BTreeSet<ServerId>,
    writes: usize,
    max_steps_per_iteration: u64,
}

impl LowerBoundCampaign {
    /// Creates a campaign issuing one write per writer (`k` writes total)
    /// with the default protected set: the `f + 1` highest-numbered servers.
    pub fn new(emulation: &dyn Emulation) -> Self {
        let params = emulation.params();
        let protected = ((params.n - (params.f + 1))..params.n)
            .map(ServerId::new)
            .collect();
        LowerBoundCampaign {
            protected,
            writes: params.k,
            max_steps_per_iteration: 500_000,
        }
    }

    /// Overrides the protected set `F` (must have `f + 1` servers).
    pub fn with_protected(mut self, protected: BTreeSet<ServerId>) -> Self {
        self.protected = protected;
        self
    }

    /// Overrides the number of adversary-driven writes (defaults to `k`).
    pub fn with_writes(mut self, writes: usize) -> Self {
        self.writes = writes;
        self
    }

    /// The protected set used by this campaign.
    pub fn protected(&self) -> &BTreeSet<ServerId> {
        &self.protected
    }

    /// Runs the campaign and returns the per-iteration report.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] if some write fails to return under the
    /// adversary (which would falsify the emulation's obstruction freedom) or
    /// the emulation rejects the workload.
    pub fn run(&self, emulation: &dyn Emulation) -> Result<CampaignReport, SimError> {
        let params = emulation.params();
        let mut sim = emulation.build_simulation();

        // One fresh client per iteration, exactly as in Lemma 1. Writers are
        // assigned round-robin over the k writer identities of the emulation.
        let clients: Vec<ClientId> = (0..self.writes)
            .map(|i| sim.register_client(emulation.writer_protocol(i % params.k)))
            .collect();

        let mut previous_writers: BTreeSet<ClientId> = BTreeSet::new();
        let mut old_pending = Vec::new();
        let mut iterations = Vec::with_capacity(self.writes);

        for (i, client) in clients.iter().enumerate() {
            let iteration = AdversaryIteration::new(
                self.protected.clone(),
                params.f,
                previous_writers.clone(),
                old_pending.clone(),
            )
            .with_max_steps(self.max_steps_per_iteration);
            let outcome: IterationOutcome = iteration.run(&mut sim, *client, (i as u64) + 1)?;

            let metrics = RunMetrics::capture(&sim);
            iterations.push(IterationReport {
                iteration: i + 1,
                covered: outcome.covered.len(),
                newly_covered: outcome.newly_covered.len(),
                coverage_avoids_protected: outcome.covered_servers.is_disjoint(&self.protected),
                resource_consumption: metrics.resource_consumption(),
                point_contention: metrics.point_contention,
                steps: outcome.steps,
            });

            previous_writers.insert(*client);
            old_pending = outcome.pending_covering;
        }

        let metrics = RunMetrics::capture(&sim);
        Ok(CampaignReport {
            emulation: emulation.name().to_string(),
            k: params.k,
            f: params.f,
            n: params.n,
            protected: self.protected.iter().map(|s| s.index()).collect(),
            final_covered: metrics.covered_count(),
            final_resource_consumption: metrics.resource_consumption(),
            touched_per_server: metrics
                .touched_per_server
                .iter()
                .map(|(s, c)| (s.index(), *c))
                .collect(),
            covered_per_server: metrics
                .covered_per_server
                .iter()
                .map(|(s, c)| (s.index(), *c))
                .collect(),
            iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regemu_bounds::Params;
    use regemu_core::{AbdMaxRegisterEmulation, RegisterBankEmulation, SpaceOptimalEmulation};

    #[test]
    fn space_optimal_coverage_grows_by_f_per_write() {
        let params = Params::new(4, 1, 4).unwrap();
        let emulation = SpaceOptimalEmulation::new(params);
        let report = LowerBoundCampaign::new(&emulation).run(&emulation).unwrap();
        assert_eq!(report.iterations.len(), 4);
        assert!(report.satisfies_coverage_growth(), "{report:?}");
        assert!(report.coverage_always_avoids_protected(), "{report:?}");
        assert!(report.is_write_sequential_evidence());
        assert!(report.final_covered >= params.k * params.f);
        assert!(report.final_resource_consumption >= regemu_bounds::register_lower_bound(params));
    }

    #[test]
    fn register_bank_coverage_also_grows() {
        let params = Params::new(3, 1, 3).unwrap();
        let emulation = RegisterBankEmulation::new(params, false);
        let report = LowerBoundCampaign::new(&emulation).run(&emulation).unwrap();
        assert!(report.satisfies_coverage_growth(), "{report:?}");
        assert!(report.coverage_always_avoids_protected(), "{report:?}");
    }

    #[test]
    fn max_register_coverage_stays_bounded() {
        // The contrast of Table 1: with RMW base objects the adversary cannot
        // force the space consumption to grow with k.
        let params = Params::new(6, 1, 3).unwrap();
        let emulation = AbdMaxRegisterEmulation::new(params, false);
        let report = LowerBoundCampaign::new(&emulation).run(&emulation).unwrap();
        assert!(report.final_resource_consumption <= 2 * params.f + 1);
        assert!(report.final_covered <= 2 * params.f + 1);
    }

    #[test]
    fn minimal_n_campaign_reaches_k_registers_on_some_server() {
        // Theorem 6: at n = 2f + 1 every server must store at least k
        // registers; the campaign exhibits a run covering k registers on a
        // single non-protected server.
        let params = Params::new(3, 1, 3).unwrap();
        let emulation = SpaceOptimalEmulation::new(params);
        let report = LowerBoundCampaign::new(&emulation).run(&emulation).unwrap();
        assert!(report.satisfies_coverage_growth());
        assert_eq!(report.max_covered_on_one_server(), params.k);
    }

    #[test]
    fn custom_protected_set_is_respected() {
        let params = Params::new(2, 1, 4).unwrap();
        let emulation = SpaceOptimalEmulation::new(params);
        let protected: BTreeSet<ServerId> = [ServerId::new(0), ServerId::new(1)].into();
        let campaign = LowerBoundCampaign::new(&emulation).with_protected(protected.clone());
        assert_eq!(campaign.protected(), &protected);
        let report = campaign.run(&emulation).unwrap();
        assert!(report.coverage_always_avoids_protected(), "{report:?}");
        for (server, covered) in &report.covered_per_server {
            if protected.contains(&ServerId::new(*server)) {
                assert_eq!(*covered, 0);
            }
        }
    }
}
