//! `serve_client` — run emulation clients against live `serve_node` servers.
//!
//! ```text
//! cargo run --release -p regemu-bench --bin serve_client -- \
//!     --params 4/1/3 --addr @node0.addr --addr @node1.addr --addr @node2.addr \
//!     [--emulation space-optimal] [--writers K] [--readers R] [--rounds N] \
//!     [--read-after-each] [--conform-log PATH] [--clock-from LOG]... \
//!     [--hold-servers LIST] [--hold-writes LIST] [--op-timeout-ms MS]
//!
//! # Scrape the fleet's live telemetry instead of running operations.
//! cargo run --release -p regemu-bench --bin serve_client -- \
//!     --params 4/1/3 --addr @node0.addr --addr @node1.addr --addr @node2.addr \
//!     --stats
//! ```
//!
//! One `--addr` per server, in server order; `@FILE` reads (and waits for)
//! an address file written by `serve_node --addr-file`. With
//! `--conform-log`, client `invoke`/`return` records are written for the
//! `serve_conform` merge step; `--clock-from` seeds this process's Lamport
//! clock above a previous invocation's log so stamps across processes order
//! correctly. `--hold-servers`/`--hold-writes` delay messages to the listed
//! servers forever — the adversarial schedules of the simulator, on sockets.
//! `--stats` sends each server a version-gated `Stats` wire query instead of
//! running any operations and prints one JSON line per server.
//!
//! Exit status: `0` when every operation completed, `4` when operations
//! timed out or clients degraded (the conformance log still records them as
//! pending), `1` on runtime errors, `2` on usage errors.

use regemu_bench::info;
use regemu_bench::serve_cli::{node_stats_json, parse_params, parse_server_list, resolve_addrs};
use regemu_bounds::Params;
use regemu_serve::{run_fleet, scrape_stats, ClientOptions, FleetSpec};
use regemu_workloads::conform::{ConformLog, ConformRecorder};
use regemu_workloads::fuzz::FuzzEmulation;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn fail(msg: &str) -> ! {
    eprintln!("serve_client: {msg}");
    eprintln!(
        "usage: serve_client --params K/F/N --addr ADDR... [--emulation NAME] \
         [--writers K] [--readers R] [--rounds N] [--read-after-each] \
         [--conform-log PATH] [--clock-from LOG]... [--hold-servers LIST] \
         [--hold-writes LIST] [--op-timeout-ms MS] [--stats]"
    );
    std::process::exit(2);
}

fn main() {
    let mut params: Option<Params> = None;
    let mut emulation = FuzzEmulation::from_name("space-optimal").unwrap();
    let mut addr_specs: Vec<String> = Vec::new();
    let mut writers: Option<usize> = None;
    let mut readers: usize = 0;
    let mut rounds: usize = 1;
    let mut read_after_each = false;
    let mut conform_log: Option<PathBuf> = None;
    let mut clock_from: Vec<PathBuf> = Vec::new();
    let mut options = ClientOptions::default();
    let mut stats_only = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
        };
        let parse_count = |flag: &str, v: String| -> usize {
            v.parse()
                .unwrap_or_else(|_| fail(&format!("invalid {flag} value {v:?}")))
        };
        match arg.as_str() {
            "--params" => {
                params = Some(parse_params(&value("--params")).unwrap_or_else(|e| fail(&e)))
            }
            "--emulation" => {
                let v = value("--emulation");
                emulation = FuzzEmulation::from_name(&v)
                    .unwrap_or_else(|| fail(&format!("unknown emulation {v:?}")));
            }
            "--addr" => addr_specs.push(value("--addr")),
            "--writers" => writers = Some(parse_count("--writers", value("--writers"))),
            "--readers" => readers = parse_count("--readers", value("--readers")),
            "--rounds" => rounds = parse_count("--rounds", value("--rounds")),
            "--read-after-each" => read_after_each = true,
            "--conform-log" => conform_log = Some(PathBuf::from(value("--conform-log"))),
            "--clock-from" => clock_from.push(PathBuf::from(value("--clock-from"))),
            "--hold-servers" => {
                options.hold_servers =
                    parse_server_list(&value("--hold-servers")).unwrap_or_else(|e| fail(&e))
            }
            "--hold-writes" => {
                options.hold_writes =
                    parse_server_list(&value("--hold-writes")).unwrap_or_else(|e| fail(&e))
            }
            "--op-timeout-ms" => {
                let ms = parse_count("--op-timeout-ms", value("--op-timeout-ms"));
                options.op_timeout = Duration::from_millis(ms as u64);
            }
            "--stats" => stats_only = true,
            other => fail(&format!("unknown option {other:?}")),
        }
    }
    let params = params.unwrap_or_else(|| fail("--params is required"));
    let writers = writers.unwrap_or(params.k);
    if addr_specs.len() != params.n {
        fail(&format!(
            "{} --addr values for n = {} servers",
            addr_specs.len(),
            params.n
        ));
    }

    let addrs = resolve_addrs(&addr_specs, Duration::from_secs(10)).unwrap_or_else(|e| {
        eprintln!("serve_client: {e}");
        std::process::exit(1);
    });

    if stats_only {
        let mut unreachable = 0;
        for (server, addr) in addrs.iter().enumerate() {
            match scrape_stats(*addr, Duration::from_secs(2)) {
                Ok(stats) => println!("{}", node_stats_json(server, &stats)),
                Err(e) => {
                    eprintln!("serve_client: server {server} ({addr}): {e}");
                    unreachable += 1;
                }
            }
        }
        std::process::exit(if unreachable > 0 { 1 } else { 0 });
    }

    // Seed this process's Lamport clock above every predecessor log's.
    let mut start_clock = 0;
    for log in &clock_from {
        match ConformLog::load(log) {
            Ok(log) => start_clock = start_clock.max(log.final_clock),
            Err(e) => {
                eprintln!("serve_client: {e}");
                std::process::exit(1);
            }
        }
    }
    let recorder = conform_log
        .as_ref()
        .map(|_| Arc::new(ConformRecorder::starting_at(start_clock)));

    let spec = FleetSpec {
        emulation,
        params,
        writers,
        readers,
        rounds,
        read_after_each,
        rate: None,
    };
    let outcome = match run_fleet(spec, &addrs, &options, recorder.clone()) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("serve_client: {e}");
            std::process::exit(1);
        }
    };

    if let (Some(path), Some(recorder)) = (&conform_log, &recorder) {
        if let Err(e) = recorder.save(path) {
            eprintln!("serve_client: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
    }

    info!(
        "serve_client: {} ops in {:?} ({:.0} ops/s), {} timeouts, {} errors",
        outcome.ops,
        outcome.elapsed,
        outcome.ops_per_sec(),
        outcome.timeouts,
        outcome.errors
    );
    if outcome.timeouts > 0 || outcome.errors > 0 {
        std::process::exit(4);
    }
}
