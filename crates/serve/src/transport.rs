//! Transports: how wire messages move between client and server processes.
//!
//! The [`Transport`] trait is deliberately tiny — blocking send, timed
//! receive — because the emulation protocols above it are event-driven state
//! machines that never block on a single object. Two implementations:
//!
//! * [`ChannelTransport`] — an in-process pair over `std::sync::mpsc`,
//!   carrying *encoded* frames so the wire codec is exercised even without a
//!   socket. Used by unit tests and the README quickstart.
//! * [`TcpTransport`] — length-prefixed frames over a `std::net::TcpStream`
//!   (no async runtime; the serve binaries are thread-per-connection).
//!   Partial frames are buffered across calls, and every malformed byte
//!   sequence surfaces as a typed [`FrameError`] — never a panic.

use regemu_core::wire::{decode_frame, FrameError, WireMsg};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Errors of the live service layer.
#[derive(Debug)]
pub enum ServeError {
    /// The peer hung up (or the connection failed irrecoverably).
    Disconnected {
        /// Human-readable peer name/address.
        peer: String,
    },
    /// The peer sent bytes that can never parse as a frame.
    Frame {
        /// Human-readable peer name/address.
        peer: String,
        /// The decoding failure.
        error: FrameError,
    },
    /// A high-level operation did not complete within its timeout.
    Timeout {
        /// What was being waited for.
        what: String,
        /// How long it was waited for.
        waited: Duration,
    },
    /// An I/O error outside the send/receive path (bind, log files, …).
    Io(std::io::Error),
    /// Invalid configuration (bad addresses, no reachable servers, …).
    Config(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Disconnected { peer } => write!(f, "peer {peer} disconnected"),
            ServeError::Frame { peer, error } => write!(f, "bad frame from {peer}: {error}"),
            ServeError::Timeout { what, waited } => {
                write!(f, "{what} timed out after {waited:?}")
            }
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Config(msg) => write!(f, "configuration error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// A bidirectional, message-oriented link to one peer.
pub trait Transport: Send {
    /// Sends one message. Blocking; an error means the peer is gone.
    fn send(&mut self, msg: &WireMsg) -> Result<(), ServeError>;

    /// Waits up to `timeout` for one message. `Ok(None)` means nothing
    /// arrived in time (the link is still healthy); an error means the link
    /// is dead or the peer is speaking garbage.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<WireMsg>, ServeError>;

    /// Human-readable peer name, for diagnostics.
    fn peer(&self) -> String;
}

/// In-process transport over `mpsc` channels carrying encoded frame bodies.
pub struct ChannelTransport {
    tx: mpsc::Sender<Vec<u8>>,
    rx: mpsc::Receiver<Vec<u8>>,
    peer: String,
}

impl ChannelTransport {
    /// Creates a connected pair. `a` and `b` name the two endpoints (each
    /// side reports the *other* as its peer).
    pub fn pair(a: &str, b: &str) -> (ChannelTransport, ChannelTransport) {
        let (a_tx, b_rx) = mpsc::channel();
        let (b_tx, a_rx) = mpsc::channel();
        (
            ChannelTransport {
                tx: a_tx,
                rx: a_rx,
                peer: b.to_string(),
            },
            ChannelTransport {
                tx: b_tx,
                rx: b_rx,
                peer: a.to_string(),
            },
        )
    }
}

impl Transport for ChannelTransport {
    fn send(&mut self, msg: &WireMsg) -> Result<(), ServeError> {
        self.tx
            .send(msg.encode())
            .map_err(|_| ServeError::Disconnected {
                peer: self.peer.clone(),
            })
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<WireMsg>, ServeError> {
        match self.rx.recv_timeout(timeout) {
            Ok(body) => WireMsg::decode(&body)
                .map(Some)
                .map_err(|error| ServeError::Frame {
                    peer: self.peer.clone(),
                    error,
                }),
            Err(mpsc::RecvTimeoutError::Timeout) => Ok(None),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(ServeError::Disconnected {
                peer: self.peer.clone(),
            }),
        }
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }
}

/// Length-prefixed frames over a blocking TCP stream.
pub struct TcpTransport {
    stream: TcpStream,
    buf: Vec<u8>,
    peer: String,
}

impl TcpTransport {
    /// Connects to a server at `addr`.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> Result<Self, ServeError> {
        let stream =
            TcpStream::connect_timeout(&addr, timeout).map_err(|_| ServeError::Disconnected {
                peer: addr.to_string(),
            })?;
        TcpTransport::from_stream(stream)
    }

    /// Wraps an accepted stream (server side).
    pub fn from_stream(stream: TcpStream) -> Result<Self, ServeError> {
        // Frames are tiny (≤ 68 bytes); batching them behind Nagle's
        // algorithm would put the 40 ms ACK-delay right on the quorum path.
        stream.set_nodelay(true)?;
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "unknown".to_string());
        Ok(TcpTransport {
            stream,
            buf: Vec::new(),
            peer,
        })
    }

    fn try_decode(&mut self) -> Result<Option<WireMsg>, ServeError> {
        match decode_frame(&self.buf) {
            Ok(Some((msg, consumed))) => {
                self.buf.drain(..consumed);
                Ok(Some(msg))
            }
            Ok(None) => Ok(None),
            Err(error) => Err(ServeError::Frame {
                peer: self.peer.clone(),
                error,
            }),
        }
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, msg: &WireMsg) -> Result<(), ServeError> {
        self.stream
            .write_all(&msg.encode_frame())
            .map_err(|_| ServeError::Disconnected {
                peer: self.peer.clone(),
            })
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<WireMsg>, ServeError> {
        // A frame may already be buffered from a previous read.
        if let Some(msg) = self.try_decode()? {
            return Ok(Some(msg));
        }
        let deadline = Instant::now() + timeout;
        let mut chunk = [0u8; 4096];
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Ok(None);
            }
            // `set_read_timeout(Some(ZERO))` is an error by contract; the
            // zero case returned above.
            self.stream.set_read_timeout(Some(remaining))?;
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(ServeError::Disconnected {
                        peer: self.peer.clone(),
                    })
                }
                Ok(got) => {
                    self.buf.extend_from_slice(&chunk[..got]);
                    if let Some(msg) = self.try_decode()? {
                        return Ok(Some(msg));
                    }
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(None)
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    return Err(ServeError::Disconnected {
                        peer: self.peer.clone(),
                    })
                }
            }
        }
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regemu_core::wire::FaultCode;
    use regemu_fpsm::{BaseOp, Value};

    #[test]
    fn channel_pair_carries_messages_both_ways() {
        let (mut a, mut b) = ChannelTransport::pair("client", "server");
        let msg = WireMsg::Request {
            op_id: 3,
            object: 1,
            op: BaseOp::Write(Value::new(1, 9)),
        };
        a.send(&msg).unwrap();
        assert_eq!(
            b.recv_timeout(Duration::from_millis(50)).unwrap(),
            Some(msg)
        );
        let reply = WireMsg::Fault {
            op_id: 3,
            code: FaultCode::Crashed,
        };
        b.send(&reply).unwrap();
        assert_eq!(
            a.recv_timeout(Duration::from_millis(50)).unwrap(),
            Some(reply)
        );
        assert_eq!(a.peer(), "server");
        assert_eq!(b.peer(), "client");
    }

    #[test]
    fn channel_timeout_and_disconnect_are_distinguished() {
        let (mut a, b) = ChannelTransport::pair("x", "y");
        assert!(a.recv_timeout(Duration::from_millis(1)).unwrap().is_none());
        drop(b);
        assert!(matches!(
            a.recv_timeout(Duration::from_millis(1)),
            Err(ServeError::Disconnected { .. })
        ));
    }

    #[test]
    fn tcp_transport_reassembles_split_and_batched_frames() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let msg1 = WireMsg::Request {
            op_id: 1,
            object: 0,
            op: BaseOp::Read,
        };
        let msg2 = WireMsg::Request {
            op_id: 2,
            object: 0,
            op: BaseOp::Write(Value::new(2, 5)),
        };
        let writer = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut bytes = msg1.encode_frame();
            bytes.extend_from_slice(&msg2.encode_frame());
            // Dribble the two frames out in 3-byte slices to force
            // reassembly, with both frames sharing reads.
            for piece in bytes.chunks(3) {
                s.write_all(piece).unwrap();
                s.flush().unwrap();
            }
            s
        });
        let mut t = TcpTransport::connect(addr, Duration::from_secs(1)).unwrap();
        assert_eq!(t.recv_timeout(Duration::from_secs(2)).unwrap(), Some(msg1));
        assert_eq!(t.recv_timeout(Duration::from_secs(2)).unwrap(), Some(msg2));
        let s = writer.join().unwrap();
        drop(s);
        assert!(matches!(
            t.recv_timeout(Duration::from_secs(1)),
            Err(ServeError::Disconnected { .. })
        ));
    }

    #[test]
    fn tcp_transport_reports_garbage_as_frame_errors() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            // A length prefix claiming a megabyte: rejected before buffering.
            s.write_all(&1_000_000u32.to_le_bytes()).unwrap();
            s
        });
        let mut t = TcpTransport::connect(addr, Duration::from_secs(1)).unwrap();
        let err = t.recv_timeout(Duration::from_secs(2)).unwrap_err();
        assert!(matches!(
            err,
            ServeError::Frame {
                error: FrameError::Oversized { len: 1_000_000 },
                ..
            }
        ));
        drop(writer.join().unwrap());
    }
}
