//! Deterministic schedule mutation.
//!
//! [`MutationStream`] is a SplitMix64 generator (the same finalizer the
//! [`regemu_fpsm::DelayedScheduler`] uses for its delay hashing): cheap,
//! dependency-free and platform-stable, so the whole corpus evolution is a
//! pure function of the master seed. [`MutatingStrategy::mutate`] draws from
//! it to perturb a corpus case — flip delivery decisions, splice prefixes
//! from a donor, shift/add/remove crash points (always within the fault
//! budget), truncate the workload, rewrite written values, demote writer
//! writes to reads, perturb delay ticks, reseed the fair tail — and wraps
//! the mutant's schedule in a [`regemu_adversary::ReplayStrategy`] ready to
//! plug into an [`regemu_fpsm::AdversarialScheduler`].

use super::FuzzCase;
use regemu_adversary::ReplayStrategy;
use regemu_fpsm::{BlockStrategy, PendingOp, Simulation, Time};

/// A deterministic SplitMix64 stream of mutation choices.
#[derive(Clone, Debug)]
pub struct MutationStream {
    state: u64,
}

impl MutationStream {
    /// A stream seeded from the master seed.
    pub fn new(seed: u64) -> Self {
        MutationStream { state: seed }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next draw reduced to `0..bound` (`0` when `bound` is `0`).
    pub fn next_below(&mut self, bound: usize) -> usize {
        if bound == 0 {
            return 0;
        }
        (self.next_u64() % bound as u64) as usize
    }

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Structural limits a mutant must respect.
#[derive(Clone, Copy, Debug)]
pub struct MutationBounds {
    /// Number of servers (crash targets are `0..n`).
    pub n: usize,
    /// Fault budget: at most `f` distinct crashed servers.
    pub f: usize,
    /// Length of the fully instantiated workload.
    pub full_workload_len: usize,
}

/// A mutated schedule, packaged as a [`BlockStrategy`].
///
/// The strategy itself is a [`ReplayStrategy`] over the mutant's decision
/// stream; [`MutatingStrategy::mutate`] is the constructor the explorer
/// uses, returning both the mutated [`FuzzCase`] (for the corpus and for
/// shrinking) and the strategy that schedules it.
#[derive(Clone, Debug)]
pub struct MutatingStrategy {
    inner: ReplayStrategy,
}

impl MutatingStrategy {
    /// Wraps an already-derived decision stream.
    pub fn replaying(decisions: Vec<u32>) -> Self {
        MutatingStrategy {
            inner: ReplayStrategy::new(decisions),
        }
    }

    /// Derives a mutant of `base` — optionally splicing from `donor` — using
    /// the deterministic stream, and returns it with the strategy that
    /// replays its schedule.
    pub fn mutate(
        base: &FuzzCase,
        donor: Option<&FuzzCase>,
        bounds: &MutationBounds,
        stream: &mut MutationStream,
    ) -> (FuzzCase, Self) {
        let mut mutant = base.clone();
        // The crash-time horizon: delivery decisions, invocations and crash
        // events each advance the clock, so three times the schedule length
        // comfortably spans the run.
        let horizon = 3 * base.decisions.len() as u64 + 16;
        let ops = 1 + stream.next_below(2);
        for _ in 0..ops {
            apply_one(&mut mutant, donor, bounds, horizon, stream);
        }
        // Canonical order for set-like fields, so equal plans compare equal.
        mutant.crashes.sort_unstable();
        mutant.rewrites.sort_unstable_by_key(|&(idx, _)| idx);
        mutant.flips.sort_unstable();
        let strategy = MutatingStrategy::replaying(mutant.decisions.clone());
        (mutant, strategy)
    }
}

impl BlockStrategy for MutatingStrategy {
    fn blocks(&mut self, sim: &Simulation, op: &PendingOp) -> bool {
        self.inner.blocks(sim, op)
    }

    fn name(&self) -> &'static str {
        "fuzz-mutate"
    }
}

/// Applies one mutation operator, drawn from the stream.
fn apply_one(
    mutant: &mut FuzzCase,
    donor: Option<&FuzzCase>,
    bounds: &MutationBounds,
    horizon: u64,
    stream: &mut MutationStream,
) {
    match stream.next_below(10) {
        // Flip one delivery decision.
        0 => {
            if !mutant.decisions.is_empty() {
                let idx = stream.next_below(mutant.decisions.len());
                mutant.decisions[idx] = stream.next_u32();
            }
        }
        // Splice: a donor prefix followed by one of our suffixes.
        1 => {
            if let Some(donor) = donor {
                let cut_donor = stream.next_below(donor.decisions.len() + 1);
                let cut_base = stream.next_below(mutant.decisions.len() + 1);
                let mut spliced = donor.decisions[..cut_donor].to_vec();
                spliced.extend_from_slice(&mutant.decisions[cut_base..]);
                mutant.decisions = spliced;
            }
        }
        // Truncate the schedule (the fair tail finishes the run).
        2 => {
            let keep = stream.next_below(mutant.decisions.len() + 1);
            mutant.decisions.truncate(keep);
        }
        // Extend the schedule with fresh decisions.
        3 => {
            let extra = 1 + stream.next_below(8);
            for _ in 0..extra {
                let value = stream.next_u32();
                mutant.decisions.push(value);
            }
        }
        // Shift, add or remove a crash point (within the fault budget).
        4 => {
            let add = mutant.crashes.is_empty()
                || (mutant.crashes.len() < bounds.f && stream.next_below(2) == 0);
            if add && mutant.crashes.len() < bounds.f && bounds.n > mutant.crashes.len() {
                let time = 1 + stream.next_below(horizon as usize) as Time;
                let start = stream.next_below(bounds.n);
                // Linear-probe to a server not already crashed: the fault
                // budget counts distinct servers.
                let used: Vec<usize> = mutant.crashes.iter().map(|&(_, s)| s).collect();
                for offset in 0..bounds.n {
                    let server = (start + offset) % bounds.n;
                    if !used.contains(&server) {
                        mutant.crashes.push((time, server));
                        break;
                    }
                }
            } else if !mutant.crashes.is_empty() {
                let idx = stream.next_below(mutant.crashes.len());
                if stream.next_below(2) == 0 {
                    mutant.crashes.remove(idx);
                } else {
                    mutant.crashes[idx].0 = 1 + stream.next_below(horizon as usize) as Time;
                }
            }
        }
        // Re-cut the workload prefix.
        5 => {
            mutant.workload_len = 1 + stream.next_below(bounds.full_workload_len);
        }
        // Reseed the fair tail.
        6 => {
            mutant.seed = stream.next_u64();
        }
        // Rewrite a written value. The replacement encodes its op index in
        // the high bits, so rewritten values stay distinct from each other
        // and from every generated value — checkers may key on values.
        7 => {
            let idx = stream.next_below(bounds.full_workload_len);
            let value = ((idx as u64 + 1) << 32) | u64::from(stream.next_u32());
            match mutant.rewrites.iter_mut().find(|(i, _)| *i == idx) {
                Some(entry) => entry.1 = value,
                None => mutant.rewrites.push((idx, value)),
            }
        }
        // Toggle a kind flip (writer write -> read); flipping the same
        // index again undoes it.
        8 => {
            let idx = stream.next_below(bounds.full_workload_len);
            match mutant.flips.iter().position(|&i| i == idx) {
                Some(pos) => {
                    mutant.flips.remove(pos);
                }
                None => mutant.flips.push(idx),
            }
        }
        // Perturb delay ticks: set a fresh perturbation (switching the case
        // to the delayed scheduler — decisions are cleared since that mode
        // ignores them), nudge one bucket, or clear it again.
        _ => {
            if mutant.delays.is_empty() {
                let buckets = 1 + stream.next_below(8);
                mutant.delays = (0..buckets).map(|_| stream.next_u32() % 16).collect();
                mutant.decisions.clear();
            } else if stream.next_below(3) == 0 {
                mutant.delays.clear();
            } else {
                let idx = stream.next_below(mutant.delays.len());
                mutant.delays[idx] = stream.next_u32() % 16;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> FuzzCase {
        FuzzCase {
            decisions: vec![1, 2, 3, 4, 5, 6, 7, 8],
            ..FuzzCase::seed_case(4, 7)
        }
    }

    fn bounds() -> MutationBounds {
        MutationBounds {
            n: 4,
            f: 2,
            full_workload_len: 4,
        }
    }

    #[test]
    fn the_stream_is_deterministic() {
        let mut a = MutationStream::new(42);
        let mut b = MutationStream::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_eq!(MutationStream::new(1).next_u64(), {
            let mut s = MutationStream::new(1);
            s.next_u64()
        });
    }

    #[test]
    fn mutants_respect_the_fault_budget() {
        let bounds = bounds();
        let mut stream = MutationStream::new(9);
        let mut case = base();
        for _ in 0..500 {
            let (mutant, _) = MutatingStrategy::mutate(&case, Some(&base()), &bounds, &mut stream);
            assert!(mutant.crashes.len() <= bounds.f, "{:?}", mutant.crashes);
            let mut servers: Vec<usize> = mutant.crashes.iter().map(|&(_, s)| s).collect();
            servers.sort_unstable();
            servers.dedup();
            assert_eq!(
                servers.len(),
                mutant.crashes.len(),
                "duplicate crash target"
            );
            assert!(servers.iter().all(|&s| s < bounds.n));
            assert!(mutant.workload_len >= 1 && mutant.workload_len <= 4);
            // Workload-op mutations stay canonical: sorted, distinct
            // in-range indices; rewritten values encode their index.
            let mut rewrite_idx: Vec<usize> = mutant.rewrites.iter().map(|&(i, _)| i).collect();
            assert!(
                rewrite_idx.windows(2).all(|w| w[0] < w[1]),
                "{rewrite_idx:?}"
            );
            rewrite_idx.retain(|&i| i < bounds.full_workload_len);
            assert_eq!(rewrite_idx.len(), mutant.rewrites.len());
            for &(idx, value) in &mutant.rewrites {
                assert_eq!(value >> 32, idx as u64 + 1);
            }
            assert!(
                mutant.flips.windows(2).all(|w| w[0] < w[1]),
                "{:?}",
                mutant.flips
            );
            assert!(mutant.flips.iter().all(|&i| i < bounds.full_workload_len));
            // Delay perturbation clears decisions when it switches modes.
            if !mutant.delays.is_empty() {
                assert!(mutant.delays.len() <= 8, "{:?}", mutant.delays);
            }
            case = mutant;
        }
    }

    #[test]
    fn mutation_is_a_pure_function_of_the_stream() {
        let bounds = bounds();
        let mut a = MutationStream::new(5);
        let mut b = MutationStream::new(5);
        for _ in 0..50 {
            let (ma, _) = MutatingStrategy::mutate(&base(), Some(&base()), &bounds, &mut a);
            let (mb, _) = MutatingStrategy::mutate(&base(), Some(&base()), &bounds, &mut b);
            assert_eq!(ma, mb);
        }
    }
}
