//! End-to-end `campaign_status`: the real binary run against real spool
//! directories — live, killed mid-campaign, completed, torn and bogus —
//! across the sweep and fuzz spool kinds. The dashboard must always exit
//! `0`, degrade damaged shards to `unknown`, and report completion.

use regemu_bounds::Params;
use regemu_workloads::campaign::{run_campaign, CampaignOptions};
use regemu_workloads::fuzz::{
    run_fuzz_campaign, FuzzCampaignConfig, FuzzCampaignOptions, FuzzConfig,
};
use regemu_workloads::status::stats_path;
use regemu_workloads::SweepConfig;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn status_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_campaign_status"))
}

fn spool_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "regemu-status-process-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Runs `campaign_status` one-shot and returns its stdout, asserting the
/// zero exit status the tool guarantees for every spool condition.
fn status_of(spool: &Path, extra: &[&str]) -> String {
    let output = Command::new(status_bin())
        .arg("--spool")
        .arg(spool)
        .args(extra)
        .output()
        .expect("campaign_status runs");
    assert!(
        output.status.success(),
        "campaign_status must exit 0 (got {:?}) — stderr: {}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8_lossy(&output.stdout).into_owned()
}

#[test]
fn dashboard_follows_a_sweep_campaign_through_kill_resume_and_damage() {
    let mut config = SweepConfig::quick();
    config.threads = 1;

    // --- killed after one of two shards ----------------------------------
    let dir = spool_dir("sweep");
    let mut options = CampaignOptions::new(&dir);
    options.shards = 2;
    options.workers = 1;
    options.worker_threads = 1;
    options.quiet = true;
    options.exit_after = Some(1);
    let first = run_campaign(&config, &options).unwrap();
    assert!(first.report.is_none(), "campaign was stopped early");

    let out = status_of(&dir, &[]);
    assert!(out.contains("done"), "one shard finished: {out}");
    assert!(
        !out.contains("COMPLETE"),
        "campaign not complete yet: {out}"
    );

    // --- a torn heartbeat degrades one shard, not the dashboard ----------
    fs::write(stats_path(&dir, 1), "{\"version\":1,\"kind\":\"sw").unwrap();
    let out = status_of(&dir, &[]);
    assert!(out.contains("unknown"), "torn heartbeat row: {out}");

    // --- resumed to completion; --watch exits once complete --------------
    options.exit_after = None;
    let second = run_campaign(&config, &options).unwrap();
    assert!(second.report.is_some(), "campaign completed");
    let out = status_of(&dir, &["--watch", "--interval-ms", "50"]);
    assert!(out.contains("COMPLETE"), "watch exits on completion: {out}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn dashboard_reads_fuzz_spools_and_shrugs_at_non_spools() {
    // --- a completed fuzz campaign ---------------------------------------
    let dir = spool_dir("fuzz");
    let config = FuzzCampaignConfig::new(FuzzConfig::new(Params::new(1, 1, 3).unwrap()).budget(32))
        .streams(2)
        .generations(2);
    let mut options = FuzzCampaignOptions::new(&dir);
    options.shards = 2;
    options.quiet = true;
    run_fuzz_campaign(&config, &options).unwrap();

    let out = status_of(&dir, &[]);
    assert!(out.contains("[fuzz]"), "fuzz spool detected: {out}");
    assert!(out.contains("COMPLETE"), "completed campaign: {out}");
    let _ = fs::remove_dir_all(&dir);

    // --- an empty directory and a missing one are diagnosed, exit 0 ------
    let empty = spool_dir("empty");
    fs::create_dir_all(&empty).unwrap();
    let out = status_of(&empty, &[]);
    assert!(out.contains("not a campaign spool"), "{out}");
    let _ = fs::remove_dir_all(&empty);
    let missing = spool_dir("missing");
    let out = status_of(&missing, &[]);
    assert!(out.contains("not a campaign spool"), "{out}");

    // --- garbage heartbeats sprayed over a live spool never panic --------
    let dir = spool_dir("garbage");
    let mut sweep_config = SweepConfig::quick();
    sweep_config.threads = 1;
    let mut sweep_options = CampaignOptions::new(&dir);
    sweep_options.shards = 2;
    sweep_options.worker_threads = 1;
    sweep_options.quiet = true;
    sweep_options.exit_after = Some(1);
    run_campaign(&sweep_config, &sweep_options).unwrap();
    fs::write(stats_path(&dir, 0), b"\xde\xad\xbe\xef").unwrap();
    fs::write(stats_path(&dir, 1), "[1,2,").unwrap();
    fs::write(dir.join("stats-0001.tmp"), "{\"mid\":\"rename\"").unwrap();
    let out = status_of(&dir, &[]);
    assert!(out.contains("unknown"), "{out}");
    let _ = fs::remove_dir_all(&dir);
}
