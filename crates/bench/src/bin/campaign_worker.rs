//! `campaign_worker` — run one shard of a sweep campaign against a spool
//! directory.
//!
//! ```text
//! cargo run --release -p regemu-bench --bin campaign_worker -- \
//!     --spool DIR --shard I [--threads N]
//! ```
//!
//! The worker reads the campaign's config and manifest from the spool
//! (written by `campaign_coordinator` or [`regemu_workloads::campaign::
//! init_spool`]), runs the cases of shard `I`, streams `done total`
//! progress counts into `shard-IIII.progress`, and atomically publishes
//! `shard-IIII.json`. It never writes the manifest — shard completion is
//! the existence of a valid report file, so workers may be spawned by the
//! coordinator *or* launched by hand (including on other machines sharing
//! the spool via a common filesystem).
//!
//! Exit status: `0` on success, `1` on failure (the coordinator retries up
//! to its attempt budget), `2` on usage errors.

use regemu_bench::info;
use regemu_workloads::campaign::run_shard;
use std::path::PathBuf;

fn fail(msg: &str) -> ! {
    eprintln!("campaign_worker: {msg}");
    eprintln!("usage: campaign_worker --spool DIR --shard I [--threads N]");
    std::process::exit(2);
}

fn main() {
    let mut spool: Option<PathBuf> = None;
    let mut shard: Option<usize> = None;
    let mut threads: usize = 0;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--spool" => spool = Some(PathBuf::from(value("--spool"))),
            "--shard" => {
                let v = value("--shard");
                shard = Some(
                    v.parse()
                        .unwrap_or_else(|_| fail(&format!("invalid shard index {v:?}"))),
                );
            }
            "--threads" => {
                let v = value("--threads");
                threads = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("invalid thread count {v:?}")));
            }
            other => fail(&format!("unknown option {other:?}")),
        }
    }
    let spool = spool.unwrap_or_else(|| fail("--spool is required"));
    let shard = shard.unwrap_or_else(|| fail("--shard is required"));

    // Test hook for the coordinator's retry path: when the named marker
    // file does not exist yet, create it and die once.
    if let Ok(marker) = std::env::var("REGEMU_WORKER_FAIL_ONCE") {
        let marker = PathBuf::from(marker);
        if !marker.exists() {
            let _ = std::fs::write(&marker, b"failed once\n");
            eprintln!("campaign_worker: injected one-shot failure (REGEMU_WORKER_FAIL_ONCE)");
            std::process::exit(1);
        }
    }

    match run_shard(&spool, shard, threads) {
        Ok(range) => {
            info!(
                "campaign_worker: shard {shard} done ({} cases, indices {}..{})",
                range.len(),
                range.start,
                range.end
            );
        }
        Err(e) => {
            eprintln!("campaign_worker: shard {shard} failed: {e}");
            std::process::exit(1);
        }
    }
}
