//! Hand-rolled HDR-style latency histogram.
//!
//! Fixed memory, O(1) record, bounded relative error: values below 16 are
//! exact; above that each power-of-two range is split into 16 sub-buckets,
//! so any reported quantile is at most ~6.25 % above the true value. This is
//! the classic high-dynamic-range layout, reimplemented here because the
//! container vendors no external crates.

/// Number of buckets: 16 exact small-value buckets plus 16 sub-buckets for
/// each of the 60 power-of-two ranges `[2^4, 2^64)`.
const NUM_BUCKETS: usize = 16 + 60 * 16;

/// A fixed-size latency histogram over `u64` samples (microseconds, by
/// convention of the serve binaries).
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; NUM_BUCKETS],
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    fn index_of(value: u64) -> usize {
        if value < 16 {
            return value as usize;
        }
        // Highest set bit is >= 4 here.
        let msb = 63 - value.leading_zeros() as usize;
        let sub = ((value >> (msb - 4)) & 0xf) as usize;
        (msb - 3) * 16 + sub
    }

    /// Upper bound (inclusive) of the values mapped to bucket `index`.
    fn upper_bound(index: usize) -> u64 {
        if index < 16 {
            return index as u64;
        }
        let group = index / 16; // >= 1
        let sub = (index % 16) as u128;
        let upper = ((16 + sub + 1) << (group - 1)) - 1;
        u64::try_from(upper).unwrap_or(u64::MAX)
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::index_of(value)] += 1;
        self.total += 1;
        self.sum += value as u128;
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Largest recorded sample (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded samples (exact).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Value at quantile `q` (clamped to `[0, 1]`): the upper bound of the
    /// first bucket whose cumulative count reaches `q * count`. Returns 0 on
    /// an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (index, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                // The true maximum never lies below a sample in this bucket.
                return Self::upper_bound(index).min(self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..16 {
            h.record(v);
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.p50(), 7);
        assert_eq!(h.quantile(1.0), 15);
        assert_eq!(h.max(), 15);
        assert!((h.mean() - 7.5).abs() < 1e-9);
    }

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        // Every value maps to a bucket whose bounds contain it, and bucket
        // indices never decrease as values grow.
        let mut values: Vec<u64> = (0..63)
            .flat_map(|exp| [0u64, 1, 3].map(|delta| (1u64 << exp) + delta))
            .collect();
        values.sort_unstable();
        let mut last = 0;
        for v in values {
            let idx = LatencyHistogram::index_of(v);
            assert!(idx >= last, "index went backwards at {v}");
            assert!(v <= LatencyHistogram::upper_bound(idx));
            last = idx;
        }
        assert!(LatencyHistogram::index_of(u64::MAX) < NUM_BUCKETS);
    }

    #[test]
    fn quantile_error_is_bounded() {
        let mut h = LatencyHistogram::new();
        for v in (0..10_000u64).map(|i| i * 37 + 11) {
            h.record(v);
        }
        for q in [0.5, 0.9, 0.99, 0.999] {
            let exact = {
                let rank = ((q * 10_000f64).ceil() as usize).max(1) - 1;
                (rank as u64) * 37 + 11
            };
            let est = h.quantile(q);
            assert!(est >= exact, "q={q}: {est} < exact {exact}");
            // 1/16 sub-bucket resolution => at most ~6.25 % over.
            assert!(
                (est as f64) <= (exact as f64) * 1.0625 + 16.0,
                "q={q}: {est} too far above {exact}"
            );
        }
    }

    #[test]
    fn merge_matches_recording_everything_into_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for v in 0..1000u64 {
            if v % 2 == 0 {
                a.record(v * 13);
            } else {
                b.record(v * 13);
            }
            all.record(v * 13);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.max(), all.max());
        for q in [0.1, 0.5, 0.99] {
            assert_eq!(a.quantile(q), all.quantile(q));
        }
    }
}
