//! # regemu-workloads — scenarios, workload generation and sweeps
//!
//! Glue between the emulation algorithms (`regemu-core`), the fault-prone
//! shared-memory simulator (`regemu-fpsm`), the consistency checkers
//! (`regemu-spec`) and the adversary (`regemu-adversary`):
//!
//! * [`scenario::Scenario`] — **the** entry point: one typed value that
//!   fully determines a run (emulation × workload × scheduler × crashes ×
//!   recording × check × seed), built into an incrementally drivable
//!   [`scenario::ScenarioRun`];
//! * [`generator::Workload`] — deterministic workload generators
//!   (write-sequential, read-heavy, random mixed, concurrent, explicit);
//! * [`sweep::run_sweep`] — fan a `(k, f, n) × emulation × workload ×
//!   scheduler × crash-plan × recording × seed` grid out across worker
//!   threads and aggregate the measurements into a deterministic
//!   [`sweep::SweepReport`] (JSON/CSV serializable);
//! * [`table`] — parameter sweeps and plain-text table rendering used by the
//!   experiment binaries in `regemu-bench`;
//! * [`fuzz`] — coverage-guided schedule fuzzing with record/replay traces
//!   ([`fuzz::RecordedSchedule`]) and automatic failure shrinking
//!   ([`fuzz::shrink_failure`]).
//!
//! ## The scenario contract
//!
//! [`scenario::Scenario`] is the single execution path every experiment,
//! sweep case and bench goes through. Given a scenario value, the run it
//! builds guarantees:
//!
//! 1. **Seeded scheduling** — all nondeterminism (delivery order, workload
//!    mix) flows from the scenario seed; the same scenario replays the same
//!    run, event for event, under any [`regemu_fpsm::Scheduler`].
//! 2. **Sequential clients** — each client's high-level operations are
//!    issued one at a time (waiting for the previous one when the workload
//!    marks an op `sequential`), as the model requires. In-flight operations
//!    are tracked through the simulation's per-client state, O(1) per query.
//! 3. **Crash injection** — a [`scenario::CrashPlanSpec`] (or explicit
//!    [`regemu_fpsm::CrashPlan`]) crashes servers at fixed logical times,
//!    within the emulation's fault budget; [`scenario::ScenarioRun`] also
//!    allows crashing mid-run.
//! 4. **Measurement** — the resulting [`runner::RunReport`] carries the
//!    [`regemu_fpsm::RunMetrics`] (resource consumption, coverage, point
//!    contention, trigger/response counts) and the high-level schedule.
//! 5. **Checking** — when a [`runner::ConsistencyCheck`] is selected, the
//!    schedule is verified and any violation is reported, not panicked on.
//!    Under a bounded [`scenario::RecordingModeSpec`] the verification runs
//!    *online* over the retained window; [`runner::CheckCoverage`] records
//!    how much of the run the verdict covers.
//! 6. **Bounded recording** — [`scenario::RecordingModeSpec`] selects how
//!    much of the event stream is retained (`Full`, `Digest`, `Ring(n)`);
//!    the metrics are byte-identical across modes for the same scenario.
//!
//! ## Example
//!
//! ```
//! use regemu_workloads::prelude::*;
//! use regemu_core::EmulationKind;
//! use regemu_bounds::Params;
//!
//! let report = Scenario::new(Params::new(2, 1, 4)?)
//!     .emulation(EmulationKind::SpaceOptimal)
//!     .workload(WorkloadSpec::WriteSequential { rounds: 1, read_after_each: true })
//!     .scheduler(SchedulerSpec::Fair)
//!     .seed(7)
//!     .run()?;
//! assert!(report.is_consistent());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod campaign;
pub mod conform;
pub mod frontier;
pub mod fuzz;
pub mod generator;
pub mod runner;
pub mod scenario;
pub mod status;
pub mod sweep;
pub mod table;

pub use conform::{
    check_history, conform_verdict, merge_logs, ConformLog, ConformRecord, ConformRecorder,
    ConformVerdict, LowOpKind,
};
pub use frontier::{
    run_frontier, run_frontier_campaign, FrontierConfig, FrontierError, FrontierReport, FrontierRow,
};
pub use fuzz::{
    fuzz_and_shrink, merge_fuzz_campaign, replay, run_fuzz_campaign, FailureKind, FailureReport,
    FuzzCampaignConfig, FuzzCampaignOptions, FuzzCampaignReport, FuzzCase, FuzzConfig,
    FuzzEmulation, FuzzReport, Fuzzer, RecordedSchedule,
};
pub use generator::{Issuer, Workload, WorkloadOp};
pub use runner::{CheckCoverage, ConsistencyCheck, RunReport};
pub use scenario::{drive, CrashPlanSpec, RecordingModeSpec, Scenario, ScenarioRun, SchedulerSpec};
pub use status::{
    campaign_status, detect_spool_kind, render_status, stats_path, CampaignStatusReport,
    ShardHealth, ShardHeartbeat, ShardStatusView, SpoolKind,
};
pub use sweep::{
    run_sweep, run_sweep_range, CaseResult, EmulationKind, SweepCase, SweepConfig, SweepReport,
    WorkloadSpec,
};
pub use table::{small_sweep, standard_sweep, TextTable};

/// Convenient glob import of the most frequently used items.
pub mod prelude {
    pub use crate::conform::{
        check_history, conform_verdict, merge_logs, ConformLog, ConformRecord, ConformRecorder,
        ConformVerdict,
    };
    pub use crate::frontier::{
        run_frontier, run_frontier_campaign, FrontierConfig, FrontierError, FrontierReport,
        FrontierRow,
    };
    pub use crate::fuzz::{
        fuzz_and_shrink, merge_fuzz_campaign, replay, run_fuzz_campaign, FailureKind,
        FailureReport, FuzzCampaignConfig, FuzzCampaignOptions, FuzzCampaignReport, FuzzCase,
        FuzzConfig, FuzzEmulation, FuzzReport, Fuzzer, RecordedSchedule,
    };
    pub use crate::generator::{Issuer, Workload, WorkloadOp};
    pub use crate::runner::{CheckCoverage, ConsistencyCheck, RunReport};
    pub use crate::scenario::{
        drive, CrashPlanSpec, RecordingModeSpec, Scenario, ScenarioRun, SchedulerSpec,
    };
    pub use crate::status::{
        campaign_status, detect_spool_kind, render_status, stats_path, CampaignStatusReport,
        ShardHealth, ShardHeartbeat, ShardStatusView, SpoolKind,
    };
    pub use crate::sweep::{
        run_sweep, run_sweep_range, CaseResult, EmulationKind, SweepCase, SweepConfig, SweepReport,
        WorkloadSpec,
    };
    pub use crate::table::{small_sweep, standard_sweep, TextTable};
}
