//! Criterion bench: cost of one high-level write+read pair for every
//! emulation of Table 1, at a common parameter point. This is the
//! "operation cost" companion of the space comparison — the space-optimal
//! register construction pays for its frugality with larger quorum scans.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use regemu_bounds::Params;
use regemu_core::{all_emulations, Emulation};
use regemu_fpsm::{FairDriver, HighOp};

fn bench_write_read_pair(c: &mut Criterion) {
    let params = Params::new(4, 1, 5).unwrap();
    let mut group = c.benchmark_group("emulation_ops/write_read_pair");
    for emulation in all_emulations(params) {
        group.bench_with_input(
            BenchmarkId::from_parameter(emulation.name()),
            &emulation,
            |b, emulation| {
                b.iter_batched(
                    || {
                        let mut sim = emulation.build_simulation();
                        let writer = sim.register_client(emulation.writer_protocol(0));
                        let reader = sim.register_client(emulation.reader_protocol());
                        (sim, writer, reader, FairDriver::new(11))
                    },
                    |(mut sim, writer, reader, mut driver)| {
                        let w = sim.invoke(writer, HighOp::Write(7)).unwrap();
                        driver.run_until_complete(&mut sim, w, 100_000).unwrap();
                        let r = sim.invoke(reader, HighOp::Read).unwrap();
                        driver.run_until_complete(&mut sim, r, 100_000).unwrap();
                    },
                    BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

fn bench_space_optimal_scaling_in_k(c: &mut Criterion) {
    // How the per-operation cost of Algorithm 2 grows with k (the collect
    // reads every register of the layout, whose size grows with k).
    let mut group = c.benchmark_group("emulation_ops/space_optimal_write_vs_k");
    for k in [1usize, 4, 8, 16] {
        let params = Params::new(k, 1, 5).unwrap();
        let emulation = regemu_core::SpaceOptimalEmulation::new(params);
        group.bench_with_input(
            BenchmarkId::from_parameter(k),
            &emulation,
            |b, emulation| {
                b.iter_batched(
                    || {
                        let mut sim = emulation.build_simulation();
                        let writer = sim.register_client(emulation.writer_protocol(0));
                        (sim, writer, FairDriver::new(3))
                    },
                    |(mut sim, writer, mut driver)| {
                        let w = sim.invoke(writer, HighOp::Write(1)).unwrap();
                        driver.run_until_complete(&mut sim, w, 200_000).unwrap();
                    },
                    BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_write_read_pair,
    bench_space_optimal_scaling_in_k
);
criterion_main!(benches);
