//! Experiment runner: execute a workload against an emulation and measure it.
//!
//! [`run_workload`] drives an [`Emulation`] with a [`Workload`] under a
//! seeded fair scheduler (optionally with a crash plan), records the run,
//! measures its space consumption and — if requested — checks the resulting
//! schedule against a consistency condition.

use crate::generator::{Issuer, Workload};
use regemu_bounds::Params;
use regemu_core::Emulation;
use regemu_fpsm::{ClientId, CrashPlan, FairDriver, HighOpId, RunMetrics, SimError, Simulation};
use regemu_spec::{
    check_linearizable, check_ws_regular, check_ws_safe, HighHistory, SequentialSpec, Violation,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Which consistency condition to verify after the run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConsistencyCheck {
    /// Do not check.
    None,
    /// Write-Sequential Safety.
    WsSafe,
    /// Write-Sequential Regularity (the guarantee of the paper's upper
    /// bounds).
    WsRegular,
    /// Atomicity (linearizability).
    Atomic,
}

/// Configuration of one experiment run.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Seed of the fair scheduler.
    pub seed: u64,
    /// Servers to crash, and when.
    pub crash_plan: CrashPlan,
    /// Per-operation step budget before the run is declared stuck.
    pub max_steps_per_op: u64,
    /// Consistency condition to verify at the end.
    pub check: ConsistencyCheck,
    /// Whether to keep delivering outstanding low-level operations after the
    /// last high-level operation completed (a "drain" phase).
    pub drain: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            seed: 0xC0FFEE,
            crash_plan: CrashPlan::none(),
            max_steps_per_op: 100_000,
            check: ConsistencyCheck::WsRegular,
            drain: false,
        }
    }
}

impl RunConfig {
    /// A configuration with the given scheduler seed.
    pub fn with_seed(seed: u64) -> Self {
        RunConfig {
            seed,
            ..Default::default()
        }
    }

    /// Sets the crash plan.
    pub fn crash_plan(mut self, plan: CrashPlan) -> Self {
        self.crash_plan = plan;
        self
    }

    /// Sets the consistency check.
    pub fn check(mut self, check: ConsistencyCheck) -> Self {
        self.check = check;
        self
    }

    /// Enables the drain phase.
    pub fn drain(mut self) -> Self {
        self.drain = true;
        self
    }
}

/// The measured outcome of one experiment run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Name of the emulation that was exercised.
    pub emulation: String,
    /// Its `(k, f, n)` parameters.
    pub params: Params,
    /// Number of base objects the emulation provisioned.
    pub provisioned_objects: usize,
    /// Space metrics of the run (resource consumption, coverage, …).
    pub metrics: RunMetrics,
    /// Number of high-level operations that completed.
    pub completed_ops: usize,
    /// Verdict of the consistency check, if one was requested.
    pub check_violation: Option<Violation>,
    /// The high-level schedule of the run (for further analysis).
    pub history: HighHistory,
}

impl RunReport {
    /// Returns `true` when the requested consistency check passed (or none
    /// was requested).
    pub fn is_consistent(&self) -> bool {
        self.check_violation.is_none()
    }
}

/// Runs `workload` against `emulation` under `config`.
///
/// # Errors
///
/// Returns a [`SimError`] if some operation cannot complete within the step
/// budget (e.g. because the crash plan exceeds what the emulation tolerates).
pub fn run_workload(
    emulation: &dyn Emulation,
    workload: &Workload,
    config: &RunConfig,
) -> Result<RunReport, SimError> {
    let params = emulation.params();
    let mut sim = emulation.build_simulation();
    let mut driver = FairDriver::new(config.seed).with_crash_plan(config.crash_plan.clone());

    // Register one client per writer identity and per reader slot, lazily.
    let mut writer_clients: HashMap<usize, ClientId> = HashMap::new();
    let mut reader_clients: HashMap<usize, ClientId> = HashMap::new();
    let mut completed: usize = 0;
    let mut outstanding: Vec<(ClientId, HighOpId)> = Vec::new();

    for step in workload.ops() {
        let client = match step.issuer {
            Issuer::Writer(i) => *writer_clients
                .entry(i % params.k)
                .or_insert_with(|| sim.register_client(emulation.writer_protocol(i % params.k))),
            Issuer::Reader(i) => *reader_clients
                .entry(i)
                .or_insert_with(|| sim.register_client(emulation.reader_protocol())),
        };
        // A client's schedule must be sequential: wait for its previous
        // operation if it is still running.
        if !sim.is_client_idle(client) {
            if let Some((_, pending)) = outstanding.iter().find(|(c, _)| *c == client).copied() {
                driver.run_until_complete(&mut sim, pending, config.max_steps_per_op)?;
            }
        }
        outstanding.retain(|(_, op)| sim.result_of(*op).is_none());

        let high_op = sim.invoke(client, step.op)?;
        if step.sequential {
            driver.run_until_complete(&mut sim, high_op, config.max_steps_per_op)?;
            completed += 1;
        } else {
            outstanding.push((client, high_op));
        }
    }

    // Finish whatever is still in flight.
    for (_, high_op) in outstanding.drain(..) {
        driver.run_until_complete(&mut sim, high_op, config.max_steps_per_op)?;
        completed += 1;
    }
    if config.drain {
        driver.run_until_quiescent(&mut sim, config.max_steps_per_op)?;
    }

    finish(emulation, params, &sim, completed, config)
}

fn finish(
    emulation: &dyn Emulation,
    params: Params,
    sim: &Simulation,
    completed_sequential: usize,
    config: &RunConfig,
) -> Result<RunReport, SimError> {
    let metrics = RunMetrics::capture(sim);
    let history = HighHistory::from_run(sim.history());
    let completed_ops = history
        .ops()
        .iter()
        .filter(|o| o.is_complete())
        .count()
        .max(completed_sequential);
    let spec = SequentialSpec::register();
    let check_violation = match config.check {
        ConsistencyCheck::None => None,
        ConsistencyCheck::WsSafe => check_ws_safe(&history, &spec).err(),
        ConsistencyCheck::WsRegular => check_ws_regular(&history, &spec).err(),
        ConsistencyCheck::Atomic => check_linearizable(&history, &spec).err(),
    };
    Ok(RunReport {
        emulation: emulation.name().to_string(),
        params,
        provisioned_objects: emulation.base_object_count(),
        metrics,
        completed_ops,
        check_violation,
        history,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use regemu_core::{all_emulations, AbdMaxRegisterEmulation, SpaceOptimalEmulation};
    use regemu_fpsm::ServerId;

    fn params(k: usize, f: usize, n: usize) -> Params {
        Params::new(k, f, n).unwrap()
    }

    #[test]
    fn write_sequential_runs_are_ws_regular_for_every_emulation() {
        let p = params(2, 1, 4);
        let workload = Workload::write_sequential(2, 2, true);
        for emulation in all_emulations(p) {
            let report = run_workload(
                emulation.as_ref(),
                &workload,
                &RunConfig::with_seed(11).check(ConsistencyCheck::WsRegular),
            )
            .unwrap();
            assert!(
                report.is_consistent(),
                "{}: {:?}",
                report.emulation,
                report.check_violation
            );
            assert_eq!(report.completed_ops, workload.len());
            assert!(report.metrics.resource_consumption() <= report.provisioned_objects);
        }
    }

    #[test]
    fn runs_survive_f_crashes_from_the_plan() {
        let p = params(2, 1, 4);
        let workload = Workload::write_sequential(2, 2, true);
        let plan = CrashPlan::none().crash_at(5, ServerId::new(3));
        for emulation in all_emulations(p) {
            let report = run_workload(
                emulation.as_ref(),
                &workload,
                &RunConfig::with_seed(3)
                    .crash_plan(plan.clone())
                    .check(ConsistencyCheck::WsRegular),
            )
            .unwrap();
            assert!(
                report.is_consistent(),
                "{}: {:?}",
                report.emulation,
                report.check_violation
            );
        }
    }

    #[test]
    fn concurrent_reads_are_regular_for_the_space_optimal_construction() {
        let p = params(2, 1, 4);
        let emulation = SpaceOptimalEmulation::new(p);
        let workload = Workload::concurrent_read_write(2, 2);
        let report = run_workload(
            &emulation,
            &workload,
            &RunConfig::with_seed(19)
                .check(ConsistencyCheck::WsRegular)
                .drain(),
        )
        .unwrap();
        assert!(report.is_consistent(), "{:?}", report.check_violation);
        assert_eq!(report.completed_ops, workload.len());
    }

    #[test]
    fn atomic_abd_variant_is_linearizable_under_mixed_workloads() {
        let p = params(2, 1, 3);
        let emulation = AbdMaxRegisterEmulation::new(p, true);
        let workload = Workload::random_mixed(2, 2, 14, 0.5, 21);
        let report = run_workload(
            &emulation,
            &workload,
            &RunConfig::with_seed(23).check(ConsistencyCheck::Atomic),
        )
        .unwrap();
        assert!(report.is_consistent(), "{:?}", report.check_violation);
    }

    #[test]
    fn read_heavy_workloads_scale_readers_without_extra_space() {
        // Readers never write in the WS-Regular constructions, so piling on
        // readers does not change the resource consumption — the reason the
        // paper can state its bounds independently of the number of readers.
        let p = params(2, 1, 4);
        let emulation = SpaceOptimalEmulation::new(p);
        let few_readers = Workload::read_heavy(p.k, 2, 1, 1);
        let many_readers = Workload::read_heavy(p.k, 2, 6, 3);
        let a = run_workload(&emulation, &few_readers, &RunConfig::with_seed(31)).unwrap();
        let b = run_workload(&emulation, &many_readers, &RunConfig::with_seed(32)).unwrap();
        assert!(a.is_consistent() && b.is_consistent());
        assert_eq!(
            a.metrics.resource_consumption(),
            b.metrics.resource_consumption()
        );
        assert!(b.metrics.written.len() <= a.provisioned_objects);
        assert_eq!(b.completed_ops, many_readers.len());
    }

    #[test]
    fn resource_consumption_is_reported_per_emulation() {
        let p = params(3, 1, 5);
        let workload = Workload::write_sequential(3, 1, false);
        let space_optimal = SpaceOptimalEmulation::new(p);
        let report = run_workload(&space_optimal, &workload, &RunConfig::default()).unwrap();
        // The writers only touch their own register sets plus whatever the
        // collect reads, which is the full layout: consumption equals the
        // provisioned count (= Theorem 3 formula).
        assert_eq!(
            report.metrics.resource_consumption(),
            report.provisioned_objects
        );
        assert_eq!(
            report.provisioned_objects,
            regemu_bounds::register_upper_bound(p)
        );
    }
}
