//! Golden-trace replay of the PR-1 smoke-test scenario.
//!
//! The full event trace (every invoke / trigger / respond / return, with
//! logical times and ids) of one write/read round-trip through each Table 1
//! emulation under `FairDriver::new(7)` was recorded before the simulator's
//! interior moved from `BTreeMap`s to dense arenas. Re-running the scenario
//! must reproduce that trace byte-for-byte: the arena representation is an
//! implementation detail and must not change scheduling, id assignment or
//! event ordering.
//!
//! Regenerate with `REGEMU_REGEN_GOLDEN=1 cargo test --test history_replay`
//! after an *intentional* semantic change (and say so in the PR).

use regemu::core::all_emulations;
use regemu::prelude::*;
use std::fmt::Write as _;

const GOLDEN_PATH: &str = "tests/golden/smoke_history.txt";

fn render_smoke_trace() -> String {
    let params = Params::new(2, 1, 4).expect("k=2, f=1, n=4 is a valid parameter point");
    let mut out = String::new();
    for emulation in all_emulations(params) {
        let mut sim = emulation.build_simulation();
        let writer = sim.register_client(emulation.writer_protocol(0));
        let reader = sim.register_client(emulation.reader_protocol());
        let mut driver = FairDriver::new(7);

        let write = sim.invoke(writer, HighOp::Write(41)).expect("invoke write");
        driver
            .run_until_complete(&mut sim, write, 50_000)
            .expect("write completes");
        let read = sim.invoke(reader, HighOp::Read).expect("invoke read");
        driver
            .run_until_complete(&mut sim, read, 50_000)
            .expect("read completes");

        writeln!(out, "== {} ({params}) ==", emulation.name()).unwrap();
        for event in sim.history().events() {
            writeln!(out, "{event}").unwrap();
        }
        let metrics = RunMetrics::capture(&sim);
        writeln!(
            out,
            "metrics: consumption={} covered={} contention={} triggers={} responses={}",
            metrics.resource_consumption(),
            metrics.covered_count(),
            metrics.point_contention,
            metrics.low_level_triggers,
            metrics.low_level_responses,
        )
        .unwrap();
    }
    out
}

#[test]
fn smoke_scenario_replays_the_recorded_history_byte_identically() {
    let trace = render_smoke_trace();
    if std::env::var_os("REGEMU_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all("tests/golden").expect("create golden dir");
        std::fs::write(GOLDEN_PATH, &trace).expect("write golden trace");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH).expect(
        "golden trace missing; regenerate with REGEMU_REGEN_GOLDEN=1 cargo test --test history_replay",
    );
    assert!(
        trace == golden,
        "replayed smoke-test history diverged from the recorded golden trace\n\
         (first difference at byte {})",
        trace
            .bytes()
            .zip(golden.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| trace.len().min(golden.len())),
    );
}
