//! Multi-threaded stress tests of the shared-memory max-register
//! implementations (Appendix B / Theorem 2), including a linearizability
//! check of real concurrent executions of Algorithm 1.

use regemu::core::CollectWriter;
use regemu::prelude::*;
use regemu_fpsm::history::HighInterval;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Records a real-threaded execution as a high-level history by stamping
/// invocations and responses with a global logical clock.
struct Recorder {
    clock: AtomicU64,
}

impl Recorder {
    fn new() -> Arc<Self> {
        Arc::new(Recorder {
            clock: AtomicU64::new(1),
        })
    }

    fn now(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::SeqCst)
    }

    fn record<F: FnOnce() -> HighResponse>(
        &self,
        client: usize,
        op: HighOp,
        body: F,
    ) -> HighInterval {
        let invoked_at = self.now();
        let response = body();
        let returned_at = self.now();
        HighInterval {
            id: HighOpId::new(0),
            client: ClientId::new(client),
            op,
            invoked_at,
            returned: Some((returned_at, response)),
        }
    }
}

fn run_threads<W, R>(threads: usize, ops_per_thread: usize, write: W, read: R) -> HighHistory
where
    W: Fn(usize, u64) + Send + Sync + 'static,
    R: Fn(usize) -> u64 + Send + Sync + 'static,
{
    let recorder = Recorder::new();
    let write = Arc::new(write);
    let read = Arc::new(read);
    let mut handles = Vec::new();
    for t in 0..threads {
        let recorder = recorder.clone();
        let write = write.clone();
        let read = read.clone();
        handles.push(std::thread::spawn(move || {
            let mut intervals = Vec::new();
            for i in 0..ops_per_thread {
                let value = (t * ops_per_thread + i + 1) as u64;
                if i % 2 == 0 {
                    intervals.push(recorder.record(t, HighOp::Write(value), || {
                        write(t, value);
                        HighResponse::WriteAck
                    }));
                } else {
                    intervals.push(
                        recorder.record(t, HighOp::Read, || HighResponse::ReadValue(read(t))),
                    );
                }
            }
            intervals
        }));
    }
    let mut all = Vec::new();
    for h in handles {
        all.extend(h.join().unwrap());
    }
    // Re-number the operation ids (they only need to be unique).
    for (i, interval) in all.iter_mut().enumerate() {
        interval.id = HighOpId::new(i as u64);
    }
    HighHistory::from_intervals(all)
}

#[test]
fn cas_max_register_real_executions_are_linearizable() {
    // Small enough that the exact checker stays fast, repeated over several
    // runs to vary the interleavings.
    for round in 0..5 {
        let reg = Arc::new(CasMaxRegister::new(0));
        let w = reg.clone();
        let r = reg.clone();
        let history = run_threads(3, 4, move |_, v| w.write_max(v), move |_| r.read_max());
        let _ = round;
        check_linearizable(&history, &SequentialSpec::max_register())
            .expect("Algorithm 1 must be atomic");
    }
}

#[test]
fn collect_max_register_real_executions_are_linearizable() {
    for _ in 0..5 {
        let reg = Arc::new(CollectMaxRegister::new(3, 0));
        let writers: Vec<CollectWriter> = (0..3).map(|i| reg.writer(i)).collect();
        let reader = reg.clone();
        let history = run_threads(
            3,
            4,
            move |t, v| writers[t].write_max(v),
            move |_| reader.read_max(),
        );
        check_linearizable(&history, &SequentialSpec::max_register())
            .expect("the collect-based k-register construction must be atomic");
    }
}

#[test]
fn fetch_max_baseline_is_linearizable() {
    let reg = Arc::new(FetchMaxRegister::new(0));
    let w = reg.clone();
    let r = reg.clone();
    let history = run_threads(4, 4, move |_, v| w.write_max(v), move |_| r.read_max());
    check_linearizable(&history, &SequentialSpec::max_register()).unwrap();
}

#[test]
fn cas_max_register_retry_count_grows_with_contention() {
    // Sequentially, an effective write needs ~3 CAS steps. Under heavy
    // contention the retry loop runs longer; the *total* attempt count per
    // write must be at least the sequential floor and is typically higher.
    let sequential = CasMaxRegister::new(0);
    for v in 1..=512u64 {
        sequential.write_max(v);
    }
    let sequential_per_write = sequential.total_attempts() as f64 / 512.0;

    let contended = Arc::new(CasMaxRegister::new(0));
    let handles: Vec<_> = (0..8u64)
        .map(|t| {
            let reg = contended.clone();
            std::thread::spawn(move || {
                for i in 0..512u64 {
                    reg.write_max(t * 10_000 + i);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let contended_per_write = contended.total_attempts() as f64 / (8.0 * 512.0);
    assert!(sequential_per_write >= 2.0);
    assert!(
        contended_per_write >= 1.0,
        "every write needs at least one probe, got {contended_per_write}"
    );
    // The maximum value is what all threads agree on at the end.
    assert_eq!(contended.read_max(), 7 * 10_000 + 511);
}

#[test]
fn theorem_2_register_count_matches_the_bound_for_various_k() {
    for k in [1usize, 2, 5, 16, 64] {
        let reg = CollectMaxRegister::new(k, 0);
        assert_eq!(reg.register_count(), k);
        assert_eq!(
            reg.register_count(),
            regemu::bounds::max_register_from_registers_lower_bound(k)
        );
    }
}
