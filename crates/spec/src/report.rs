//! Checker verdicts and violation reports.

use regemu_fpsm::history::HighInterval;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which consistency condition a checker was verifying.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Condition {
    /// Atomicity (linearizability).
    Atomicity,
    /// Write-Sequential Regularity.
    WsRegularity,
    /// Write-Sequential Safety.
    WsSafety,
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::Atomicity => write!(f, "atomicity"),
            Condition::WsRegularity => write!(f, "WS-Regularity"),
            Condition::WsSafety => write!(f, "WS-Safety"),
        }
    }
}

/// A description of why a schedule violates a consistency condition.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// The condition that failed.
    pub condition: Condition,
    /// The operation that could not be explained, when the checker can point
    /// at a single culprit (typically a read returning an impossible value).
    pub offending: Option<HighInterval>,
    /// Human-readable explanation.
    pub explanation: String,
}

impl Violation {
    /// Creates a violation report.
    pub fn new(
        condition: Condition,
        offending: Option<HighInterval>,
        explanation: impl Into<String>,
    ) -> Self {
        Violation {
            condition,
            offending,
            explanation: explanation.into(),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} violated: {}", self.condition, self.explanation)?;
        if let Some(op) = &self.offending {
            write!(f, " (offending operation: {} by {})", op.op, op.client)?;
        }
        Ok(())
    }
}

impl std::error::Error for Violation {}

/// The outcome of running a checker on a schedule.
pub type CheckResult = Result<(), Violation>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HighHistory;

    #[test]
    fn violation_display_mentions_condition_and_culprit() {
        let read = HighHistory::read(2, 7, 0, 1);
        let v = Violation::new(
            Condition::WsSafety,
            Some(read),
            "read returned a stale value",
        );
        let msg = v.to_string();
        assert!(msg.contains("WS-Safety"));
        assert!(msg.contains("stale"));
        assert!(msg.contains("c2"));
    }

    #[test]
    fn condition_display() {
        assert_eq!(Condition::Atomicity.to_string(), "atomicity");
        assert_eq!(Condition::WsRegularity.to_string(), "WS-Regularity");
    }
}
