//! Parallel, deterministic parameter sweeps.
//!
//! A sweep fans a `(k, f, n) × emulation × workload × scheduler ×
//! crash-plan × recording × seed` grid out across `std::thread` workers and
//! aggregates
//! the per-case measurements into a [`SweepReport`]. Every case is one
//! [`crate::Scenario`] — *fully independent*: the worker builds its own
//! emulation instance, workload and seeded scheduler, so the report is a
//! pure function of the [`SweepConfig`] — running with 1 worker or 64
//! produces byte-identical [`SweepReport::to_json`] / [`SweepReport::to_csv`]
//! output. Workers pull cases from a shared atomic cursor (work stealing),
//! and results land in a slot vector indexed by case number, so scheduling
//! order never leaks into the output.
//!
//! ```
//! use regemu_workloads::sweep::{run_sweep, SweepConfig};
//!
//! let mut config = SweepConfig::quick();
//! config.threads = 2;
//! let report = run_sweep(&config);
//! assert_eq!(report.len(), config.case_count());
//! assert!(report.all_consistent());
//! ```

use crate::generator::Workload;
use crate::runner::ConsistencyCheck;
use crate::scenario::{CrashPlanSpec, RecordingModeSpec, Scenario, SchedulerSpec};
use crate::table::small_sweep;
use regemu_bounds::Params;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub use regemu_core::EmulationKind;

/// A workload shape, instantiated per case with the case's `k` and seed.
///
/// Specs avoid floats so labels and JSON stay byte-stable across platforms.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// [`Workload::write_sequential`]: `rounds` writes per writer, one at a
    /// time, optionally followed by a read each.
    WriteSequential {
        /// Writes per writer.
        rounds: usize,
        /// Issue a read after every write.
        read_after_each: bool,
    },
    /// [`Workload::read_heavy`]: each write followed by a burst of reads.
    ReadHeavy {
        /// Number of writes.
        writes: usize,
        /// Reads issued after each write.
        reads_per_write: usize,
        /// Distinct reader clients the reads rotate over.
        readers: usize,
    },
    /// [`Workload::random_mixed`]: `total` operations, each a write with
    /// probability `write_percent`/100. The generator is seeded with the
    /// case seed, so different seeds give different (but reproducible)
    /// operation sequences.
    RandomMixed {
        /// Distinct reader clients.
        readers: usize,
        /// Total operations.
        total: usize,
        /// Probability of a write, in percent (0–100).
        write_percent: u8,
    },
    /// [`Workload::concurrent_read_write`]: every write overlaps a read.
    ConcurrentReadWrite {
        /// Rounds of one write per writer.
        rounds: usize,
    },
}

impl WorkloadSpec {
    /// Builds the concrete workload for a case with `k` writers and `seed`.
    pub fn instantiate(&self, k: usize, seed: u64) -> Workload {
        match *self {
            WorkloadSpec::WriteSequential {
                rounds,
                read_after_each,
            } => Workload::write_sequential(k, rounds, read_after_each),
            WorkloadSpec::ReadHeavy {
                writes,
                reads_per_write,
                readers,
            } => Workload::read_heavy(k, writes, reads_per_write, readers),
            WorkloadSpec::RandomMixed {
                readers,
                total,
                write_percent,
            } => Workload::random_mixed(k, readers, total, f64::from(write_percent) / 100.0, seed),
            WorkloadSpec::ConcurrentReadWrite { rounds } => {
                Workload::concurrent_read_write(k, rounds)
            }
        }
    }

    /// The inverse of [`WorkloadSpec::label`], for CLI flags and the
    /// campaign config format: `label` round-trips through `from_label`
    /// exactly for every spec.
    pub fn from_label(label: &str) -> Option<Self> {
        if let Some(rest) = label.strip_prefix("write-seq/r") {
            let (rounds, read_after_each) = match rest.strip_suffix("+read") {
                Some(r) => (r, true),
                None => (rest, false),
            };
            return Some(WorkloadSpec::WriteSequential {
                rounds: rounds.parse().ok()?,
                read_after_each,
            });
        }
        if let Some(rest) = label.strip_prefix("read-heavy/w") {
            let (writes, rest) = rest.split_once('x')?;
            let (reads_per_write, readers) = rest.split_once('c')?;
            return Some(WorkloadSpec::ReadHeavy {
                writes: writes.parse().ok()?,
                reads_per_write: reads_per_write.parse().ok()?,
                readers: readers.parse().ok()?,
            });
        }
        if let Some(rest) = label.strip_prefix("mixed/") {
            let (total, rest) = rest.split_once("ops-")?;
            let (write_percent, readers) = rest.split_once("pct-c")?;
            return Some(WorkloadSpec::RandomMixed {
                readers: readers.parse().ok()?,
                total: total.parse().ok()?,
                write_percent: write_percent.parse().ok()?,
            });
        }
        if let Some(rounds) = label.strip_prefix("concurrent/r") {
            return Some(WorkloadSpec::ConcurrentReadWrite {
                rounds: rounds.parse().ok()?,
            });
        }
        None
    }

    /// Stable short label used in reports.
    pub fn label(&self) -> String {
        match *self {
            WorkloadSpec::WriteSequential {
                rounds,
                read_after_each,
            } => format!(
                "write-seq/r{rounds}{}",
                if read_after_each { "+read" } else { "" }
            ),
            WorkloadSpec::ReadHeavy {
                writes,
                reads_per_write,
                readers,
            } => format!("read-heavy/w{writes}x{reads_per_write}c{readers}"),
            WorkloadSpec::RandomMixed {
                readers,
                total,
                write_percent,
            } => format!("mixed/{total}ops-{write_percent}pct-c{readers}"),
            WorkloadSpec::ConcurrentReadWrite { rounds } => format!("concurrent/r{rounds}"),
        }
    }
}

impl fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Declarative description of a sweep: the full cross product of
/// `grid × emulations × workloads × schedulers × crash_plans × recordings ×
/// seeds` is run, each point as one independent, deterministic
/// [`Scenario`].
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Parameter points `(k, f, n)` to sweep.
    pub grid: Vec<Params>,
    /// Constructions to run at each point.
    pub emulations: Vec<EmulationKind>,
    /// Workload shapes to run for each construction.
    pub workloads: Vec<WorkloadSpec>,
    /// Schedulers driving the runs; each is a separate case.
    pub schedulers: Vec<SchedulerSpec>,
    /// Crash plans injected into the runs; each is a separate case.
    pub crash_plans: Vec<CrashPlanSpec>,
    /// Recording modes the runs retain their event streams under; each is a
    /// separate case. Metrics are identical across modes, so this axis is
    /// used to bound sweep memory (and to prove the equivalence).
    pub recordings: Vec<RecordingModeSpec>,
    /// Scheduler seeds; each seed is a separate case.
    pub seeds: Vec<u64>,
    /// Consistency condition verified after every run.
    pub check: ConsistencyCheck,
    /// Per-operation step budget before a case is reported as stuck.
    pub max_steps_per_op: u64,
    /// Worker threads; `0` means one per available CPU core.
    pub threads: usize,
}

impl SweepConfig {
    /// A small but representative default: the CI-sized `(k, f, n)` grid ×
    /// all four constructions × a write-sequential and a mixed workload ×
    /// two seeds under the fair scheduler, failure-free (96 cases).
    pub fn standard() -> Self {
        SweepConfig {
            grid: small_sweep(),
            emulations: EmulationKind::ALL.to_vec(),
            workloads: vec![
                WorkloadSpec::WriteSequential {
                    rounds: 2,
                    read_after_each: true,
                },
                WorkloadSpec::RandomMixed {
                    readers: 2,
                    total: 12,
                    write_percent: 50,
                },
            ],
            schedulers: vec![SchedulerSpec::Fair],
            crash_plans: vec![CrashPlanSpec::None],
            recordings: vec![RecordingModeSpec::Full],
            seeds: vec![1, 2],
            check: ConsistencyCheck::WsRegular,
            max_steps_per_op: 100_000,
            threads: 0,
        }
    }

    /// A tiny grid (24 cases) that still crosses every construction with
    /// every workload shape — used by tests and the CI smoke run.
    pub fn quick() -> Self {
        SweepConfig {
            grid: [(1, 1, 3), (2, 1, 4), (2, 2, 5)]
                .into_iter()
                .map(|(k, f, n)| Params::new(k, f, n).expect("valid quick-grid point"))
                .collect(),
            emulations: EmulationKind::ALL.to_vec(),
            workloads: vec![
                WorkloadSpec::WriteSequential {
                    rounds: 1,
                    read_after_each: true,
                },
                WorkloadSpec::RandomMixed {
                    readers: 1,
                    total: 6,
                    write_percent: 50,
                },
            ],
            schedulers: vec![SchedulerSpec::Fair],
            crash_plans: vec![CrashPlanSpec::None],
            recordings: vec![RecordingModeSpec::Full],
            seeds: vec![7],
            check: ConsistencyCheck::WsRegular,
            max_steps_per_op: 100_000,
            threads: 0,
        }
    }

    /// Number of cases the cross product expands to.
    pub fn case_count(&self) -> usize {
        self.grid.len()
            * self.emulations.len()
            * self.workloads.len()
            * self.schedulers.len()
            * self.crash_plans.len()
            * self.recordings.len()
            * self.seeds.len()
    }

    /// Expands the cross product into concrete cases, in a stable order
    /// (grid-major, then emulation, workload, scheduler, crash plan,
    /// recording, seed).
    pub fn cases(&self) -> Vec<SweepCase> {
        let mut cases = Vec::with_capacity(self.case_count());
        for &params in &self.grid {
            for &emulation in &self.emulations {
                for workload in &self.workloads {
                    for &scheduler in &self.schedulers {
                        for &crashes in &self.crash_plans {
                            for &recording in &self.recordings {
                                for &seed in &self.seeds {
                                    cases.push(SweepCase {
                                        index: cases.len(),
                                        params,
                                        emulation,
                                        workload: *workload,
                                        scheduler,
                                        crashes,
                                        recording,
                                        seed,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        cases
    }

    fn worker_count(&self, cases: usize) -> usize {
        let available = if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        };
        available.min(cases).max(1)
    }
}

/// One point of the expanded sweep grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SweepCase {
    /// Position in [`SweepConfig::cases`] order; results are reported in
    /// this order regardless of which worker ran the case.
    pub index: usize,
    /// Parameter point.
    pub params: Params,
    /// Construction under test.
    pub emulation: EmulationKind,
    /// Workload shape.
    pub workload: WorkloadSpec,
    /// Scheduler driving the run.
    pub scheduler: SchedulerSpec,
    /// Crash plan injected into the run.
    pub crashes: CrashPlanSpec,
    /// Recording mode the run retains its event stream under.
    pub recording: RecordingModeSpec,
    /// Scheduler (and workload-generator) seed.
    pub seed: u64,
}

impl SweepCase {
    /// The [`Scenario`] this case describes; running it is the case.
    pub fn scenario(&self, check: ConsistencyCheck, max_steps_per_op: u64) -> Scenario {
        Scenario::new(self.params)
            .emulation(self.emulation)
            .workload(self.workload)
            .scheduler(self.scheduler)
            .crashes(self.crashes)
            .recording(self.recording)
            .check(check)
            .seed(self.seed)
            .max_steps_per_op(max_steps_per_op)
    }
}

/// The measured outcome of one sweep case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CaseResult {
    /// The case that was run.
    pub case: SweepCase,
    /// Base objects the construction provisioned.
    pub provisioned_objects: usize,
    /// Resource consumption of the run (`|touched|`).
    pub resource_consumption: usize,
    /// Base objects left covered by a pending write at the end of the run.
    pub covered: usize,
    /// Peak number of covered objects over the whole run, `max_t |Cov(t)|` —
    /// the schedule-dependent coverage pressure the frontier campaign
    /// ([`crate::frontier`]) judges against the paper's bounds.
    pub peak_covered: usize,
    /// Peak number of covered objects on any single server over the run
    /// (Theorem 6's per-server quantity).
    pub peak_covered_server: usize,
    /// Maximum per-server occupancy: the largest number of touched objects
    /// on any single server (monotone, so the end-of-run value is the peak).
    pub max_occupancy: usize,
    /// Point contention of the run.
    pub point_contention: usize,
    /// Low-level operations triggered.
    pub low_level_triggers: u64,
    /// Low-level operations that responded.
    pub low_level_responses: u64,
    /// High-level operations that completed.
    pub completed_ops: usize,
    /// `true` when the configured consistency check passed.
    pub consistent: bool,
    /// How much of the run the verdict is based on (`complete`,
    /// `truncated`, `unrecorded`; empty when the run errored).
    pub coverage: String,
    /// Violation description when the check failed.
    pub violation: Option<String>,
    /// Engine error when the run itself failed (e.g. stuck past the step
    /// budget); the rest of the row is zeroed in that case.
    pub error: Option<String>,
}

fn run_case(case: &SweepCase, config: &SweepConfig) -> CaseResult {
    let scenario = case.scenario(config.check, config.max_steps_per_op);
    match scenario.run() {
        Ok(report) => CaseResult {
            case: *case,
            provisioned_objects: report.provisioned_objects,
            resource_consumption: report.metrics.resource_consumption(),
            covered: report.metrics.covered_count(),
            peak_covered: report.metrics.peak_covered_count(),
            peak_covered_server: report.metrics.peak_covered_on_one_server,
            max_occupancy: report.metrics.max_occupancy(),
            point_contention: report.metrics.point_contention,
            low_level_triggers: report.metrics.low_level_triggers,
            low_level_responses: report.metrics.low_level_responses,
            completed_ops: report.completed_ops,
            consistent: report.is_consistent(),
            coverage: report.check_coverage.name().to_string(),
            violation: report.check_violation.as_ref().map(ToString::to_string),
            error: None,
        },
        Err(e) => CaseResult {
            case: *case,
            provisioned_objects: case.emulation.build(case.params).base_object_count(),
            resource_consumption: 0,
            covered: 0,
            peak_covered: 0,
            peak_covered_server: 0,
            max_occupancy: 0,
            point_contention: 0,
            low_level_triggers: 0,
            low_level_responses: 0,
            completed_ops: 0,
            consistent: false,
            coverage: String::new(),
            violation: None,
            error: Some(e.to_string()),
        },
    }
}

/// Aggregated results of a sweep, in case order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SweepReport {
    results: Vec<CaseResult>,
}

impl SweepReport {
    /// Assembles a report from already-measured results.
    ///
    /// The caller is responsible for supplying the results in
    /// [`SweepConfig::cases`] order — this is how the campaign layer
    /// reassembles a report from per-shard files, after slotting every
    /// parsed result by its case index.
    pub fn from_results(results: Vec<CaseResult>) -> Self {
        SweepReport { results }
    }

    /// The per-case results, in [`SweepConfig::cases`] order.
    pub fn results(&self) -> &[CaseResult] {
        &self.results
    }

    /// Number of cases.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// Returns `true` when the sweep ran no cases.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// Returns `true` when every case ran to completion and passed its
    /// consistency check.
    pub fn all_consistent(&self) -> bool {
        self.results.iter().all(|r| r.consistent)
    }

    /// Cases whose consistency check failed or whose run errored.
    pub fn failures(&self) -> impl Iterator<Item = &CaseResult> {
        self.results.iter().filter(|r| !r.consistent)
    }

    /// Serializes the report as a deterministic JSON document: an object
    /// with a `cases` array (one object per case, fields in a fixed order)
    /// and summary counts. Hand-rolled so the offline serde shim suffices;
    /// byte-identical for identical configs regardless of worker count.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"cases\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            let c = &r.case;
            out.push_str(&format!(
                "    {{\"index\": {}, \"emulation\": \"{}\", \"k\": {}, \"f\": {}, \"n\": {}, \
                 \"workload\": \"{}\", \"scheduler\": \"{}\", \"crashes\": \"{}\", \
                 \"recording\": \"{}\", \"seed\": {}, \
                 \"provisioned\": {}, \"consumption\": {}, \
                 \"covered\": {}, \"peak_covered\": {}, \"peak_covered_server\": {}, \
                 \"occupancy\": {}, \"contention\": {}, \"triggers\": {}, \"responses\": {}, \
                 \"completed\": {}, \"consistent\": {}, \"coverage\": \"{}\", \
                 \"violation\": {}, \"error\": {}}}{}\n",
                c.index,
                c.emulation.name(),
                c.params.k,
                c.params.f,
                c.params.n,
                json_escape(&c.workload.label()),
                c.scheduler.name(),
                c.crashes.name(),
                json_escape(&c.recording.label()),
                c.seed,
                r.provisioned_objects,
                r.resource_consumption,
                r.covered,
                r.peak_covered,
                r.peak_covered_server,
                r.max_occupancy,
                r.point_contention,
                r.low_level_triggers,
                r.low_level_responses,
                r.completed_ops,
                r.consistent,
                json_escape(&r.coverage),
                json_opt_string(r.violation.as_deref()),
                json_opt_string(r.error.as_deref()),
                if i + 1 < self.results.len() { "," } else { "" },
            ));
        }
        let consistent = self.results.iter().filter(|r| r.consistent).count();
        out.push_str(&format!(
            "  ],\n  \"case_count\": {},\n  \"consistent_count\": {}\n}}\n",
            self.results.len(),
            consistent,
        ));
        out
    }

    /// Serializes the report as CSV with a fixed header, one row per case.
    /// Deterministic for identical configs regardless of worker count.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "index,emulation,k,f,n,workload,scheduler,crashes,recording,seed,provisioned,\
             consumption,covered,peak_covered,peak_covered_server,occupancy,contention,\
             triggers,responses,completed,consistent,coverage,violation,error\n",
        );
        for r in &self.results {
            let c = &r.case;
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                c.index,
                c.emulation.name(),
                c.params.k,
                c.params.f,
                c.params.n,
                csv_field(&c.workload.label()),
                c.scheduler.name(),
                c.crashes.name(),
                csv_field(&c.recording.label()),
                c.seed,
                r.provisioned_objects,
                r.resource_consumption,
                r.covered,
                r.peak_covered,
                r.peak_covered_server,
                r.max_occupancy,
                r.point_contention,
                r.low_level_triggers,
                r.low_level_responses,
                r.completed_ops,
                r.consistent,
                csv_field(&r.coverage),
                csv_field(r.violation.as_deref().unwrap_or("")),
                csv_field(r.error.as_deref().unwrap_or("")),
            ));
        }
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_opt_string(s: Option<&str>) -> String {
    match s {
        Some(s) => format!("\"{}\"", json_escape(s)),
        None => "null".to_string(),
    }
}

fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Runs every case of `config` across a pool of worker threads and collects
/// the results in case order.
///
/// Workers claim cases from a shared atomic cursor; each case is hermetic
/// (its own emulation instance, workload and seeded driver), so the returned
/// report — and its JSON/CSV serializations — are identical for any worker
/// count, including 1.
pub fn run_sweep(config: &SweepConfig) -> SweepReport {
    let cases = config.cases();
    run_cases(config, &cases)
}

/// Runs a contiguous case-index range of `config`'s case space — one
/// *shard* of the sweep — over the same worker pool as [`run_sweep`].
///
/// The returned report holds the cases of `start..end` (clamped to the case
/// count), with their global case indices intact: concatenating the reports
/// of a partition of `0..case_count` in range order reassembles the exact
/// [`run_sweep`] report. This is the unit of work of the campaign layer
/// ([`crate::campaign`]).
pub fn run_sweep_range(config: &SweepConfig, start: usize, end: usize) -> SweepReport {
    let cases = config.cases();
    let end = end.min(cases.len());
    let start = start.min(end);
    run_cases(config, &cases[start..end])
}

/// Work-stealing pool shared by [`run_sweep`] and [`run_sweep_range`]: each
/// case is hermetic, results land in slots indexed by position, so the
/// output is identical for any worker count.
fn run_cases(config: &SweepConfig, cases: &[SweepCase]) -> SweepReport {
    let workers = config.worker_count(cases.len());
    let slots: Mutex<Vec<Option<CaseResult>>> = Mutex::new(vec![None; cases.len()]);
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(case) = cases.get(i) else {
                    break;
                };
                let result = run_case(case, config);
                slots.lock().expect("sweep result lock")[i] = Some(result);
            });
        }
    });

    let results: Vec<CaseResult> = slots
        .into_inner()
        .expect("sweep result lock")
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|| panic!("sweep case {i} produced no result")))
        .collect();
    SweepReport { results }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_is_consistent_and_fully_reported() {
        let mut config = SweepConfig::quick();
        config.threads = 1;
        let report = run_sweep(&config);
        assert_eq!(report.len(), config.case_count());
        assert_eq!(report.len(), 24);
        assert!(report.all_consistent(), "{:?}", report.failures().next());
        for (i, r) in report.results().iter().enumerate() {
            assert_eq!(r.case.index, i);
            assert!(r.error.is_none());
            assert!(r.resource_consumption <= r.provisioned_objects);
            assert!(r.completed_ops > 0);
        }
    }

    #[test]
    fn reports_are_identical_across_worker_counts() {
        let mut config = SweepConfig::quick();
        config.threads = 1;
        let single = run_sweep(&config);
        config.threads = 4;
        let multi = run_sweep(&config);
        assert_eq!(single, multi);
        assert_eq!(single.to_json(), multi.to_json());
        assert_eq!(single.to_csv(), multi.to_csv());
    }

    #[test]
    fn scheduler_axis_sweeps_deterministically_across_worker_counts() {
        let mut config = SweepConfig::quick();
        config.grid.truncate(2);
        config.workloads.truncate(1);
        config.schedulers = SchedulerSpec::ALL.to_vec();
        config.threads = 1;
        let single = run_sweep(&config);
        assert_eq!(single.len(), config.case_count());
        assert_eq!(single.len(), 2 * 4 * SchedulerSpec::ALL.len());
        assert!(single.all_consistent(), "{:?}", single.failures().next());
        config.threads = 4;
        let multi = run_sweep(&config);
        assert_eq!(single.to_json(), multi.to_json());
        assert_eq!(single.to_csv(), multi.to_csv());
        // Every scheduler actually appears in the serialized report.
        for s in SchedulerSpec::ALL {
            assert!(single.to_csv().contains(s.name()), "{} missing", s.name());
        }
    }

    #[test]
    fn crash_plan_axis_cases_survive_and_stay_consistent() {
        let mut config = SweepConfig::quick();
        config.crash_plans = CrashPlanSpec::ALL.to_vec();
        config.threads = 2;
        let report = run_sweep(&config);
        assert_eq!(report.len(), 24 * CrashPlanSpec::ALL.len());
        assert!(report.all_consistent(), "{:?}", report.failures().next());
    }

    #[test]
    fn recording_axis_reports_identical_metrics_columns() {
        let mut config = SweepConfig::quick();
        config.grid.truncate(2);
        config.recordings = vec![
            RecordingModeSpec::Full,
            RecordingModeSpec::Digest,
            RecordingModeSpec::Ring(1024),
        ];
        config.threads = 2;
        let report = run_sweep(&config);
        assert_eq!(report.len(), config.case_count());
        assert_eq!(report.len(), 2 * 4 * 2 * 3);
        // Cases come in (full, digest, ring) triples that differ only in the
        // recording axis: their measured columns must be identical, and the
        // coverage column tells the three modes apart.
        for triple in report.results().chunks(3) {
            let [full, digest, ring] = triple else {
                panic!("recording axis must expand to triples");
            };
            assert_eq!(full.case.recording, RecordingModeSpec::Full);
            assert_eq!(digest.case.recording, RecordingModeSpec::Digest);
            assert_eq!(ring.case.recording, RecordingModeSpec::Ring(1024));
            for bounded in [digest, ring] {
                assert_eq!(bounded.resource_consumption, full.resource_consumption);
                assert_eq!(bounded.covered, full.covered);
                assert_eq!(bounded.peak_covered, full.peak_covered);
                assert_eq!(bounded.peak_covered_server, full.peak_covered_server);
                assert_eq!(bounded.max_occupancy, full.max_occupancy);
                assert_eq!(bounded.point_contention, full.point_contention);
                assert_eq!(bounded.low_level_triggers, full.low_level_triggers);
                assert_eq!(bounded.low_level_responses, full.low_level_responses);
                assert_eq!(bounded.completed_ops, full.completed_ops);
            }
            assert_eq!(full.coverage, "complete");
            assert_eq!(digest.coverage, "unrecorded");
            assert_eq!(ring.coverage, "complete");
            assert_eq!(ring.consistent, full.consistent);
        }
        let csv = report.to_csv();
        assert!(csv.contains(",digest,"));
        assert!(csv.contains(",ring:1024,"));
    }

    #[test]
    fn json_and_csv_have_one_record_per_case() {
        let mut config = SweepConfig::quick();
        config.threads = 2;
        let report = run_sweep(&config);
        let json = report.to_json();
        assert_eq!(json.matches("\"index\":").count(), report.len());
        assert!(json.contains("\"case_count\": 24"));
        assert!(json.contains("\"scheduler\": \"fair\""));
        assert!(json.contains("\"crashes\": \"none\""));
        let csv = report.to_csv();
        assert_eq!(csv.lines().count(), report.len() + 1);
        assert!(csv.starts_with("index,emulation,k,f,n,workload,scheduler,crashes,recording,seed"));
    }

    #[test]
    fn escaping_helpers_handle_special_characters() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_opt_string(None), "null");
        assert_eq!(json_opt_string(Some("x")), "\"x\"");
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn workload_specs_instantiate_with_case_parameters() {
        let spec = WorkloadSpec::RandomMixed {
            readers: 2,
            total: 10,
            write_percent: 50,
        };
        let a = spec.instantiate(3, 7);
        let b = spec.instantiate(3, 7);
        let c = spec.instantiate(3, 8);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds must give different mixes");
        assert_eq!(a.len(), 10);
        assert_eq!(spec.label(), "mixed/10ops-50pct-c2");
        assert_eq!(
            WorkloadSpec::WriteSequential {
                rounds: 2,
                read_after_each: true
            }
            .label(),
            "write-seq/r2+read"
        );
    }
}
