//! Sampled, non-perturbing telemetry for the simulation hot loop.
//!
//! [`SimTelemetry`] tallies the simulator's primitive transitions — invokes,
//! deliveries, drops, crashes — into plain local integers and flushes them
//! to the process-global `regemu-obs` registry once every
//! [`SimTelemetry::SAMPLE_EVERY`] events, so the hot loop pays one branch
//! and a couple of integer adds per event, and an atomic write only at
//! sample boundaries.
//!
//! ## The non-perturbation contract
//!
//! Telemetry is attached by [`crate::sim::Simulation::new`] only when
//! [`regemu_obs::enabled`] is on, and it is **observation-only**: nothing in
//! the simulator reads a metric back, so no behaviour can branch on it.
//! Inside the deterministic path the only clock it touches is the
//! simulation's *logical* time (the step counter published as `sim.steps`);
//! wallclock readings happen at process edges only. The
//! `telemetry_does_not_perturb_runs` test in `sim.rs` — and the campaign
//! byte-identity tests in `regemu-workloads` — prove histories and reports
//! are byte-identical with telemetry on and off.

use crate::ids::Time;
use regemu_obs::{Counter, Gauge};
use std::sync::Arc;

/// Shared handles into the global registry, resolved once at attach time.
#[derive(Debug)]
struct Shared {
    steps: Arc<Counter>,
    invokes: Arc<Counter>,
    deliveries: Arc<Counter>,
    drops: Arc<Counter>,
    crashes: Arc<Counter>,
    pending_depth: Arc<Gauge>,
    pending_peak: Arc<Gauge>,
}

/// The sampled telemetry hook a [`crate::sim::Simulation`] carries when
/// global telemetry is enabled.
#[derive(Debug)]
pub struct SimTelemetry {
    invokes: u64,
    deliveries: u64,
    drops: u64,
    crashes: u64,
    peak_depth: u64,
    last_depth: u64,
    /// Logical time already flushed to the `sim.steps` counter.
    flushed_time: Time,
    /// Logical time observed by the most recent note.
    seen_time: Time,
    events_since_flush: u64,
    shared: Shared,
}

impl SimTelemetry {
    /// Events tallied locally between flushes to the shared registry.
    pub const SAMPLE_EVERY: u64 = 1024;

    /// Attaches to the process-global registry under the `sim.*` namespace.
    pub fn attached() -> Self {
        Self::for_registry(regemu_obs::global())
    }

    /// Attaches to a specific registry (tests use an isolated one).
    pub fn for_registry(registry: &regemu_obs::Registry) -> Self {
        SimTelemetry {
            invokes: 0,
            deliveries: 0,
            drops: 0,
            crashes: 0,
            peak_depth: 0,
            last_depth: 0,
            flushed_time: 0,
            seen_time: 0,
            events_since_flush: 0,
            shared: Shared {
                steps: registry.counter("sim.steps"),
                invokes: registry.counter("sim.invokes"),
                deliveries: registry.counter("sim.deliveries"),
                drops: registry.counter("sim.drops"),
                crashes: registry.counter("sim.crashes"),
                pending_depth: registry.gauge("sim.pending_depth"),
                pending_peak: registry.gauge("sim.pending_peak"),
            },
        }
    }

    /// Notes a high-level invocation. `time` is the simulation's logical
    /// clock after the transition; `depth` the pending-set size.
    pub fn note_invoke(&mut self, time: Time, depth: usize) {
        self.invokes += 1;
        self.note(time, depth);
    }

    /// Notes a delivery.
    pub fn note_delivery(&mut self, time: Time, depth: usize) {
        self.deliveries += 1;
        self.note(time, depth);
    }

    /// Notes a dropped pending operation.
    pub fn note_drop(&mut self, time: Time, depth: usize) {
        self.drops += 1;
        self.note(time, depth);
    }

    /// Notes a server or client crash.
    pub fn note_crash(&mut self, time: Time, depth: usize) {
        self.crashes += 1;
        self.note(time, depth);
    }

    fn note(&mut self, time: Time, depth: usize) {
        let depth = depth as u64;
        self.peak_depth = self.peak_depth.max(depth);
        self.last_depth = depth;
        self.seen_time = time;
        self.events_since_flush += 1;
        if self.events_since_flush >= Self::SAMPLE_EVERY {
            self.flush();
        }
    }

    /// Publishes the local tallies to the shared registry and resets them.
    /// Called automatically at sample boundaries and on drop.
    pub fn flush(&mut self) {
        if self.events_since_flush == 0 {
            return;
        }
        let s = &self.shared;
        s.steps
            .add(self.seen_time.saturating_sub(self.flushed_time));
        s.invokes.add(std::mem::take(&mut self.invokes));
        s.deliveries.add(std::mem::take(&mut self.deliveries));
        s.drops.add(std::mem::take(&mut self.drops));
        s.crashes.add(std::mem::take(&mut self.crashes));
        s.pending_depth.set(self.last_depth as i64);
        s.pending_peak
            .raise_to(std::mem::take(&mut self.peak_depth) as i64);
        self.flushed_time = self.seen_time;
        self.events_since_flush = 0;
    }
}

impl Drop for SimTelemetry {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tallies_flush_at_sample_boundaries_and_on_drop() {
        let registry = regemu_obs::Registry::new();
        {
            let mut t = SimTelemetry::for_registry(&registry);
            for i in 0..(SimTelemetry::SAMPLE_EVERY + 10) {
                t.note_delivery(i + 1, 3);
            }
            // One full sample window flushed, the 10-event remainder has not.
            assert_eq!(
                registry.counter("sim.deliveries").get(),
                SimTelemetry::SAMPLE_EVERY
            );
        }
        // Drop flushed the remainder.
        assert_eq!(
            registry.counter("sim.deliveries").get(),
            SimTelemetry::SAMPLE_EVERY + 10
        );
        assert_eq!(
            registry.counter("sim.steps").get(),
            SimTelemetry::SAMPLE_EVERY + 10
        );
        assert_eq!(registry.gauge("sim.pending_peak").get(), 3);
        assert_eq!(registry.gauge("sim.pending_depth").get(), 3);
    }
}
