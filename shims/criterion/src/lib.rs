//! Minimal stand-in for `criterion` 0.5 used by the offline build (see
//! `shims/README.md`). Benches written against the standard criterion API
//! compile unchanged; running them measures genuine wall-clock means over a
//! fixed number of iterations and prints one line per benchmark, without
//! criterion's statistical machinery. Set `CRITERION_SHIM_ITERS` to change
//! the per-benchmark iteration count (default 30).

use std::fmt;
use std::time::Instant;

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `name/parameter` id.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Batch sizing hints (accepted for compatibility; batches of size 1 are used).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Throughput annotation (recorded for display only).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    iters: u64,
    total_nanos: u128,
    timed_iters: u64,
}

impl Bencher {
    /// Times `routine`, called `iters` times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(routine());
            self.total_nanos += start.elapsed().as_nanos();
            self.timed_iters += 1;
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total_nanos += start.elapsed().as_nanos();
            self.timed_iters += 1;
        }
    }

    /// Like [`Bencher::iter_batched`], but passes the input by `&mut`.
    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            self.total_nanos += start.elapsed().as_nanos();
            self.timed_iters += 1;
        }
    }
}

fn run_one(label: &str, iters: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher { iters, total_nanos: 0, timed_iters: 0 };
    f(&mut bencher);
    let mean = if bencher.timed_iters == 0 {
        0
    } else {
        bencher.total_nanos / u128::from(bencher.timed_iters)
    };
    println!("bench {label:<50} {mean:>12} ns/iter ({} iters)", bencher.timed_iters);
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        let iters = std::env::var("CRITERION_SHIM_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(30);
        Criterion { iters }
    }
}

impl Criterion {
    /// Accepted for compatibility with `criterion_group!`'s expansion.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Benchmarks a single closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.iters, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), iters: self.iters, _parent: self }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Records the group throughput (display only in this shim).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Overrides the iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = n as u64;
        self
    }

    /// Benchmarks a closure under `id` within the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.iters, &mut f);
        self
    }

    /// Benchmarks a closure over a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.iters, &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op in this shim).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
