//! Linearizability (atomicity) checking.
//!
//! Implements a Wing & Gong style search: a schedule is linearizable with
//! respect to a sequential specification iff there is a total order of its
//! operations that (1) respects the real-time precedence relation `≺` and (2)
//! belongs to the specification. Complete operations must all appear in the
//! linearization; pending write operations *may* be included (they may have
//! taken effect), pending reads are ignored.
//!
//! The search memoizes visited `(set of linearized ops, abstract state)`
//! pairs, which keeps it fast for the moderately sized, moderately concurrent
//! histories produced by the test suites. It is exponential in the worst
//! case, as any exact checker must be.

use crate::history::HighHistory;
use crate::report::{CheckResult, Condition, Violation};
use crate::sequential::SequentialSpec;
use regemu_fpsm::history::HighInterval;
use regemu_fpsm::Payload;
use std::collections::HashSet;

/// Checks that `history` is linearizable (atomic) w.r.t. `spec`.
///
/// # Errors
///
/// Returns a [`Violation`] with condition [`Condition::Atomicity`] when no
/// linearization exists.
pub fn check_linearizable(history: &HighHistory, spec: &SequentialSpec) -> CheckResult {
    let ops: Vec<HighInterval> = history
        .ops()
        .iter()
        // Pending reads impose no constraint and can be dropped outright.
        .filter(|o| o.is_complete() || o.op.is_write())
        .copied()
        .collect();

    if ops.is_empty() {
        return Ok(());
    }

    let searcher = Searcher {
        ops: &ops,
        spec: *spec,
    };
    if searcher.search(spec.initial) {
        Ok(())
    } else {
        Err(Violation::new(
            Condition::Atomicity,
            None,
            format!(
                "no linearization of the {} operations exists for the {:?} specification",
                ops.len(),
                spec.semantics
            ),
        ))
    }
}

/// Returns `true` when `ops` (complete operations mandatory, pending writes
/// optional, pending reads must have been filtered out by the caller) can be
/// linearized starting from the abstract state `initial` instead of the
/// specification's own initial value. Used by the streaming checker, which
/// folds a committed prefix of the history into a running state.
pub(crate) fn linearizable_from(
    ops: &[HighInterval],
    spec: &SequentialSpec,
    initial: Payload,
) -> bool {
    if ops.is_empty() {
        return true;
    }
    let searcher = Searcher { ops, spec: *spec };
    searcher.search(initial)
}

struct Searcher<'a> {
    ops: &'a [HighInterval],
    spec: SequentialSpec,
}

impl Searcher<'_> {
    fn search(&self, initial: Payload) -> bool {
        let n = self.ops.len();
        let mut scheduled = vec![false; n];
        let mut visited: HashSet<(Vec<u64>, Payload)> = HashSet::new();
        self.dfs(&mut scheduled, initial, &mut visited)
    }

    fn key(scheduled: &[bool]) -> Vec<u64> {
        let mut words = vec![0u64; scheduled.len().div_ceil(64)];
        for (i, s) in scheduled.iter().enumerate() {
            if *s {
                words[i / 64] |= 1 << (i % 64);
            }
        }
        words
    }

    /// Returns `true` if all remaining (unscheduled) complete operations can
    /// still be linearized from `state`.
    fn dfs(
        &self,
        scheduled: &mut Vec<bool>,
        state: Payload,
        visited: &mut HashSet<(Vec<u64>, Payload)>,
    ) -> bool {
        if self
            .ops
            .iter()
            .zip(scheduled.iter())
            .all(|(o, s)| *s || !o.is_complete())
        {
            return true;
        }
        if !visited.insert((Self::key(scheduled), state)) {
            return false;
        }

        for i in 0..self.ops.len() {
            if scheduled[i] || !self.is_minimal(i, scheduled) {
                continue;
            }
            let op = &self.ops[i];
            let (next_state, expected) = self.spec.step(state, op.op);
            // A complete operation must have returned exactly the response
            // the specification mandates at this point; a pending write is
            // unconstrained (it never returned).
            let consistent = match op.returned {
                Some((_, actual)) => actual == expected,
                None => true,
            };
            if !consistent {
                continue;
            }
            scheduled[i] = true;
            if self.dfs(scheduled, next_state, visited) {
                scheduled[i] = false;
                return true;
            }
            scheduled[i] = false;
        }

        // Pending writes may also be *skipped* (they may never take effect);
        // skipping is modelled by the termination condition above, which only
        // requires complete operations to be scheduled. However, a pending
        // write that is never scheduled must not be required by any complete
        // operation — the exploration above already covers that case because
        // skipping simply means never choosing it.
        false
    }

    /// `ops[i]` may be linearized next iff every *unscheduled* operation that
    /// precedes it in real time has already been linearized — i.e. there is
    /// no unscheduled `p` with `p ≺ ops[i]`.
    fn is_minimal(&self, i: usize, scheduled: &[bool]) -> bool {
        self.ops
            .iter()
            .zip(scheduled.iter())
            .all(|(p, s)| *s || !p.precedes(&self.ops[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regemu_fpsm::HighOp;
    use regemu_fpsm::HighResponse;

    fn register() -> SequentialSpec {
        SequentialSpec::register()
    }

    fn max_register() -> SequentialSpec {
        SequentialSpec::max_register()
    }

    #[test]
    fn sequential_history_is_linearizable() {
        let mut h = HighHistory::default();
        h.push_complete(0, HighOp::Write(1), HighResponse::WriteAck, 0, 1);
        h.push_complete(1, HighOp::Read, HighResponse::ReadValue(1), 2, 3);
        h.push_complete(0, HighOp::Write(2), HighResponse::WriteAck, 4, 5);
        h.push_complete(1, HighOp::Read, HighResponse::ReadValue(2), 6, 7);
        assert!(check_linearizable(&h, &register()).is_ok());
    }

    #[test]
    fn stale_read_is_not_linearizable() {
        let mut h = HighHistory::default();
        h.push_complete(0, HighOp::Write(1), HighResponse::WriteAck, 0, 1);
        h.push_complete(0, HighOp::Write(2), HighResponse::WriteAck, 2, 3);
        h.push_complete(1, HighOp::Read, HighResponse::ReadValue(1), 4, 5);
        let err = check_linearizable(&h, &register()).unwrap_err();
        assert_eq!(err.condition, Condition::Atomicity);
    }

    #[test]
    fn concurrent_read_may_return_either_value() {
        // Read overlaps the write of 2: both 1 and 2 are legal.
        let mut ok1 = HighHistory::default();
        ok1.push_complete(0, HighOp::Write(1), HighResponse::WriteAck, 0, 1);
        ok1.push_complete(0, HighOp::Write(2), HighResponse::WriteAck, 2, 6);
        ok1.push_complete(1, HighOp::Read, HighResponse::ReadValue(1), 3, 4);
        assert!(check_linearizable(&ok1, &register()).is_ok());

        let mut ok2 = HighHistory::default();
        ok2.push_complete(0, HighOp::Write(1), HighResponse::WriteAck, 0, 1);
        ok2.push_complete(0, HighOp::Write(2), HighResponse::WriteAck, 2, 6);
        ok2.push_complete(1, HighOp::Read, HighResponse::ReadValue(2), 3, 4);
        assert!(check_linearizable(&ok2, &register()).is_ok());
    }

    #[test]
    fn new_old_inversion_is_rejected() {
        // Two sequential reads around a concurrent write: the first sees the
        // new value, the second the old one — classic atomicity violation.
        let mut h = HighHistory::default();
        h.push_complete(0, HighOp::Write(1), HighResponse::WriteAck, 0, 1);
        h.push_complete(0, HighOp::Write(2), HighResponse::WriteAck, 2, 20);
        h.push_complete(1, HighOp::Read, HighResponse::ReadValue(2), 3, 4);
        h.push_complete(1, HighOp::Read, HighResponse::ReadValue(1), 5, 6);
        assert!(check_linearizable(&h, &register()).is_err());
    }

    #[test]
    fn pending_write_may_or_may_not_take_effect() {
        // A pending write of 5 explains the read of 5.
        let mut h = HighHistory::default();
        h.push_pending(0, HighOp::Write(5), 0);
        h.push_complete(1, HighOp::Read, HighResponse::ReadValue(5), 1, 2);
        assert!(check_linearizable(&h, &register()).is_ok());

        // ... and a read of the initial value is fine too (the pending write
        // simply never took effect).
        let mut h2 = HighHistory::default();
        h2.push_pending(0, HighOp::Write(5), 0);
        h2.push_complete(1, HighOp::Read, HighResponse::ReadValue(0), 1, 2);
        assert!(check_linearizable(&h2, &register()).is_ok());
    }

    #[test]
    fn max_register_semantics_differ_from_register() {
        // write 5, then write 3, then read. A max-register must return 5; a
        // plain register must return 3.
        let mut read5 = HighHistory::default();
        read5.push_complete(0, HighOp::Write(5), HighResponse::WriteAck, 0, 1);
        read5.push_complete(0, HighOp::Write(3), HighResponse::WriteAck, 2, 3);
        read5.push_complete(1, HighOp::Read, HighResponse::ReadValue(5), 4, 5);
        assert!(check_linearizable(&read5, &max_register()).is_ok());
        assert!(check_linearizable(&read5, &register()).is_err());

        let mut read3 = HighHistory::default();
        read3.push_complete(0, HighOp::Write(5), HighResponse::WriteAck, 0, 1);
        read3.push_complete(0, HighOp::Write(3), HighResponse::WriteAck, 2, 3);
        read3.push_complete(1, HighOp::Read, HighResponse::ReadValue(3), 4, 5);
        assert!(check_linearizable(&read3, &max_register()).is_err());
        assert!(check_linearizable(&read3, &register()).is_ok());
    }

    #[test]
    fn empty_and_read_only_histories_are_trivially_linearizable() {
        let h = HighHistory::default();
        assert!(check_linearizable(&h, &register()).is_ok());
        let mut r = HighHistory::default();
        r.push_complete(0, HighOp::Read, HighResponse::ReadValue(0), 0, 1);
        assert!(check_linearizable(&r, &register()).is_ok());
        let mut bad = HighHistory::default();
        bad.push_complete(0, HighOp::Read, HighResponse::ReadValue(3), 0, 1);
        assert!(check_linearizable(&bad, &register()).is_err());
    }
}
