//! `frontier_campaign` — map the empirical space-complexity frontier:
//! sweep a `(k, f, n) × emulation × scheduler × crash-plan` grid, sample
//! peak coverage/occupancy per run, and judge every point against the
//! paper's Table 1 bounds. Single-process by default; pass `--spool` to run
//! the campaign sharded over worker processes with kill/resume, merging to
//! a byte-identical frontier table.
//!
//! ```text
//! cargo run --release -p regemu-bench --bin frontier_campaign -- [OPTIONS]
//!
//! OPTIONS (frontier config):
//!   --grid k/f/n,..     parameter points (typed rejection of infeasible
//!                       points, e.g. n < 2f+1; default: the quick grid)
//!   --emulations a,b    constructions (or "all"; default all four)
//!   --seeds a,b,..      seeds (default 1,2)
//!   --schedulers a,b    schedulers (or "all"; default fair,adversary-cover)
//!   --crash-plans a,b   crash plans (or "all"; default none,crash-f)
//!   --rounds N          writes per writer in the workload (default 2)
//!   --threads N         sweep threads (per worker when sharded)
//!
//! OPTIONS (sharded campaign; omit --spool for single-process):
//!   --spool DIR         spool directory (enables the sharded protocol)
//!   --shards N          shard count for a fresh spool (default 4)
//!   --workers M         concurrent worker processes (default 2)
//!   --retries R         attempt budget per shard (default 3)
//!   --worker-bin PATH   campaign_worker binary (default: next to this one)
//!   --in-process        run shards inside this process instead of spawning
//!   --exit-after N      stop after N shards (kill simulation; rerun the
//!                       same command to resume)
//!   --merge-only        only merge existing shard reports, run nothing
//!   --quiet             no progress lines
//!
//! OPTIONS (output):
//!   --text PATH         rendered frontier table (- for stdout; default -)
//!   --json PATH         frontier table as JSON (- for stdout)
//!   --csv PATH          frontier table as CSV (- for stdout)
//! ```
//!
//! Exit codes: 0 table produced and every row within its upper bound;
//! 1 a row exceeded its bound (or a run failed); 2 usage error (including
//! infeasible grid points); 3 paused by `--exit-after` (resumable).

use regemu_bench::cli::{set_quiet, write_output};
use regemu_bench::info;
use regemu_core::EmulationKind;
use regemu_workloads::campaign::{load_config, merge_shards, CampaignOptions, WorkerMode};
use regemu_workloads::frontier::{
    run_frontier, run_frontier_campaign, FrontierConfig, FrontierReport,
};
use regemu_workloads::scenario::{CrashPlanSpec, SchedulerSpec};
use regemu_workloads::sweep::WorkloadSpec;
use std::path::PathBuf;
use std::time::Instant;

fn fail(msg: &str) -> ! {
    eprintln!("frontier_campaign: {msg}");
    eprintln!(
        "usage: frontier_campaign [--grid k/f/n,..] [--emulations a,b|all] [--seeds a,b,..] \
         [--schedulers a,b|all] [--crash-plans a,b|all] [--rounds N] [--threads N] \
         [--spool DIR] [--shards N] [--workers M] [--retries R] [--worker-bin PATH] \
         [--in-process] [--exit-after N] [--merge-only] [--quiet] \
         [--text PATH] [--json PATH] [--csv PATH]"
    );
    std::process::exit(2);
}

fn default_worker_bin() -> PathBuf {
    let Ok(me) = std::env::current_exe() else {
        return PathBuf::from("campaign_worker");
    };
    let mut bin = me;
    bin.set_file_name(format!("campaign_worker{}", std::env::consts::EXE_SUFFIX));
    bin
}

fn main() {
    let mut config = FrontierConfig::quick();
    let mut any_config_flag = false;
    let mut rounds: Option<usize> = None;
    let mut spool: Option<PathBuf> = None;
    let mut shards: usize = 4;
    let mut workers: usize = 2;
    let mut retries: u32 = 3;
    let mut worker_bin: Option<PathBuf> = None;
    let mut in_process = false;
    let mut exit_after: Option<usize> = None;
    let mut merge_only = false;
    let mut quiet = false;
    let mut text_out: Option<String> = None;
    let mut json_out: Option<String> = None;
    let mut csv_out: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
        };
        let parse_usize = |flag: &str, v: String| -> usize {
            v.parse()
                .unwrap_or_else(|_| fail(&format!("invalid {flag} value {v:?}")))
        };
        match arg.as_str() {
            "--grid" => {
                // Infeasible points (k = 0, f = 0, n < 2f+1 ⇒ z = 0) are a
                // typed rejection up front, never a silent skip.
                config.grid =
                    FrontierConfig::grid_from_spec(&value("--grid")).unwrap_or_else(|e| fail(&e));
                any_config_flag = true;
            }
            "--emulations" => {
                let v = value("--emulations");
                config.emulations = if v.trim() == "all" {
                    EmulationKind::ALL.to_vec()
                } else {
                    v.split(',')
                        .map(|s| {
                            EmulationKind::from_name(s.trim())
                                .unwrap_or_else(|| fail(&format!("unknown emulation {s:?}")))
                        })
                        .collect()
                };
                any_config_flag = true;
            }
            "--seeds" => {
                config.seeds = value("--seeds")
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse()
                            .unwrap_or_else(|_| fail(&format!("invalid seed {s:?}")))
                    })
                    .collect();
                any_config_flag = true;
            }
            "--schedulers" => {
                let v = value("--schedulers");
                config.schedulers = if v.trim() == "all" {
                    SchedulerSpec::ALL.to_vec()
                } else {
                    v.split(',')
                        .map(|s| {
                            SchedulerSpec::from_name(s.trim())
                                .unwrap_or_else(|| fail(&format!("unknown scheduler {s:?}")))
                        })
                        .collect()
                };
                any_config_flag = true;
            }
            "--crash-plans" => {
                let v = value("--crash-plans");
                config.crash_plans = if v.trim() == "all" {
                    CrashPlanSpec::ALL.to_vec()
                } else {
                    v.split(',')
                        .map(|s| {
                            CrashPlanSpec::from_name(s.trim())
                                .unwrap_or_else(|| fail(&format!("unknown crash plan {s:?}")))
                        })
                        .collect()
                };
                any_config_flag = true;
            }
            "--rounds" => {
                rounds = Some(parse_usize("--rounds", value("--rounds")).max(1));
                any_config_flag = true;
            }
            "--threads" => config.threads = parse_usize("--threads", value("--threads")),
            "--spool" => spool = Some(PathBuf::from(value("--spool"))),
            "--shards" => shards = parse_usize("--shards", value("--shards")).max(1),
            "--workers" => workers = parse_usize("--workers", value("--workers")).max(1),
            "--retries" => {
                retries = value("--retries")
                    .parse()
                    .unwrap_or_else(|_| fail("invalid --retries value"));
            }
            "--worker-bin" => worker_bin = Some(PathBuf::from(value("--worker-bin"))),
            "--in-process" => in_process = true,
            "--exit-after" => {
                exit_after = Some(parse_usize("--exit-after", value("--exit-after")));
            }
            "--merge-only" => merge_only = true,
            "--quiet" => {
                quiet = true;
                set_quiet();
            }
            "--text" => text_out = Some(value("--text")),
            "--json" => json_out = Some(value("--json")),
            "--csv" => csv_out = Some(value("--csv")),
            other => fail(&format!("unknown option {other:?}")),
        }
    }
    if let Some(rounds) = rounds {
        config.workloads = vec![WorkloadSpec::WriteSequential {
            rounds,
            read_after_each: true,
        }];
    }
    if let Err(e) = config.validate() {
        fail(&e.to_string());
    }

    let emit = |report: &FrontierReport| {
        let text = text_out.as_deref().unwrap_or("-");
        write_output(text, &report.to_text(), "frontier table");
        if let Some(path) = &json_out {
            write_output(path, &report.to_json(), "frontier JSON");
        }
        if let Some(path) = &csv_out {
            write_output(path, &report.to_csv(), "frontier CSV");
        }
        if !report.all_within_upper() {
            for row in report.violations() {
                eprintln!(
                    "bound exceeded: k={} f={} n={} {}: measured {} > upper {}",
                    row.params.k,
                    row.params.f,
                    row.params.n,
                    row.emulation.name(),
                    row.verdict.measured,
                    row.verdict.upper,
                );
            }
            std::process::exit(1);
        }
    };

    let Some(spool) = spool else {
        // Single-process path.
        let started = Instant::now();
        let report = run_frontier(&config).unwrap_or_else(|e| fail(&e.to_string()));
        info!(
            "frontier: {} cases -> {} rows in {:.2?}",
            config.case_count(),
            report.len(),
            started.elapsed()
        );
        emit(&report);
        return;
    };

    // A resumed spool dictates the config (the frontier config is
    // reconstructed from the spooled sweep config); a fresh spool takes the
    // flags. Contradicting flags are an error, not a silent re-run.
    if let Ok(spooled) = load_config(&spool) {
        let from_spool =
            FrontierConfig::from_sweep_config(&spooled).unwrap_or_else(|e| fail(&e.to_string()));
        if any_config_flag
            && regemu_workloads::campaign::config_fingerprint(&config.to_sweep_config())
                != regemu_workloads::campaign::config_fingerprint(&spooled)
        {
            fail(&format!(
                "spool {} was created for a different frontier config than the flags passed; \
                 drop the config flags to resume it, or use a fresh --spool",
                spool.display()
            ));
        }
        let threads = config.threads;
        config = from_spool;
        config.threads = threads;
        info!(
            "frontier_campaign: resuming spool {} ({} cases)",
            spool.display(),
            config.case_count()
        );
    }

    if merge_only {
        let sweep = merge_shards(&spool).unwrap_or_else(|e| {
            eprintln!("frontier_campaign: merge failed: {e}");
            std::process::exit(1);
        });
        let report =
            FrontierReport::from_sweep(&config, &sweep).unwrap_or_else(|e| fail(&e.to_string()));
        info!(
            "merged {} cases into {} frontier rows from existing shard reports",
            sweep.len(),
            report.len()
        );
        emit(&report);
        return;
    }

    let mut options = CampaignOptions::new(&spool);
    options.shards = shards;
    options.workers = workers;
    options.max_attempts = retries.max(1);
    options.worker_threads = config.threads.max(1);
    options.worker = if in_process {
        WorkerMode::InProcess
    } else {
        let bin = worker_bin.unwrap_or_else(default_worker_bin);
        if !bin.exists() {
            fail(&format!(
                "worker binary {} not found; build it (cargo build -p regemu-bench) or pass \
                 --worker-bin / --in-process",
                bin.display()
            ));
        }
        WorkerMode::Spawn(bin)
    };
    options.exit_after = exit_after;
    options.quiet = quiet;

    let started = Instant::now();
    let outcome = run_frontier_campaign(&config, &options).unwrap_or_else(|e| {
        eprintln!("frontier_campaign: {e}");
        std::process::exit(1);
    });
    match outcome {
        Some(report) => {
            info!(
                "frontier campaign: {} cases -> {} rows in {:.2?}",
                config.case_count(),
                report.len(),
                started.elapsed()
            );
            emit(&report);
        }
        None => {
            info!(
                "frontier campaign stopped early (--exit-after); rerun the same command to resume"
            );
            std::process::exit(3);
        }
    }
}
