//! A `k`-writer max-register from `k` single-writer registers.

use super::SharedMaxRegister;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The collect-based `k`-writer max-register: one register slot per writer.
///
/// Writer `i` only ever writes its own slot (keeping it monotone), and a read
/// collects all `k` slots and returns the maximum. This uses exactly `k` base
/// registers — matching the lower bound of Theorem 2, which shows no
/// construction can use fewer.
///
/// [`CollectMaxRegister::writer`] hands out per-writer handles; writes
/// through the shared [`SharedMaxRegister::write_max`] entry point are
/// attributed to slot 0 (useful for single-writer benchmarks).
#[derive(Debug)]
pub struct CollectMaxRegister {
    slots: Vec<AtomicU64>,
    initial: u64,
}

impl CollectMaxRegister {
    /// Creates a max-register for `k` writers with initial value `initial`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize, initial: u64) -> Self {
        assert!(k > 0, "a max-register needs at least one writer slot");
        CollectMaxRegister {
            slots: (0..k).map(|_| AtomicU64::new(initial)).collect(),
            initial,
        }
    }

    /// Number of base registers used (equals the number of writers `k`).
    pub fn register_count(&self) -> usize {
        self.slots.len()
    }

    /// A handle for writer `index` (`< k`).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn writer(self: &Arc<Self>, index: usize) -> CollectWriter {
        assert!(
            index < self.slots.len(),
            "writer index {index} out of range"
        );
        CollectWriter {
            shared: self.clone(),
            index,
        }
    }

    fn write_slot(&self, slot: usize, value: u64) {
        // The slot is single-writer, so a monotone update needs no CAS: read
        // our own last value and store the maximum.
        let current = self.slots[slot].load(Ordering::SeqCst);
        if value > current {
            self.slots[slot].store(value, Ordering::SeqCst);
        }
    }

    fn collect(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| s.load(Ordering::SeqCst))
            .max()
            .unwrap_or(self.initial)
    }
}

impl SharedMaxRegister for CollectMaxRegister {
    fn write_max(&self, value: u64) {
        self.write_slot(0, value);
    }

    fn read_max(&self) -> u64 {
        self.collect()
    }
}

/// A per-writer handle of a [`CollectMaxRegister`].
#[derive(Debug, Clone)]
pub struct CollectWriter {
    shared: Arc<CollectMaxRegister>,
    index: usize,
}

impl CollectWriter {
    /// Writes `value` through this writer's own slot.
    pub fn write_max(&self, value: u64) {
        self.shared.write_slot(self.index, value);
    }

    /// Reads the maximum over all slots.
    pub fn read_max(&self) -> u64 {
        self.shared.collect()
    }

    /// The writer index of this handle.
    pub fn index(&self) -> usize {
        self.index
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uses_exactly_k_registers() {
        let m = CollectMaxRegister::new(5, 0);
        assert_eq!(m.register_count(), 5);
        assert_eq!(
            m.register_count(),
            regemu_bounds::max_register_from_registers_lower_bound(5)
        );
    }

    #[test]
    fn per_writer_handles_keep_the_global_maximum() {
        let m = Arc::new(CollectMaxRegister::new(3, 0));
        let w0 = m.writer(0);
        let w1 = m.writer(1);
        let w2 = m.writer(2);
        w0.write_max(10);
        w1.write_max(4);
        w2.write_max(7);
        assert_eq!(w1.read_max(), 10);
        w1.write_max(12);
        assert_eq!(w0.read_max(), 12);
        assert_eq!(w2.index(), 2);
    }

    #[test]
    fn own_slot_is_monotone_even_with_smaller_writes() {
        let m = Arc::new(CollectMaxRegister::new(2, 0));
        let w = m.writer(0);
        w.write_max(9);
        w.write_max(3);
        assert_eq!(w.read_max(), 9);
    }

    #[test]
    fn concurrent_writers_each_in_their_own_slot() {
        let m = Arc::new(CollectMaxRegister::new(4, 0));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let w = m.writer(i);
                std::thread::spawn(move || {
                    for v in 0..300u64 {
                        w.write_max(i as u64 * 1000 + v);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.read_max(), 3 * 1000 + 299);
    }

    #[test]
    #[should_panic(expected = "at least one writer")]
    fn zero_writers_is_rejected() {
        CollectMaxRegister::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_writer_is_rejected() {
        let m = Arc::new(CollectMaxRegister::new(2, 0));
        let _ = m.writer(2);
    }
}
