//! Criterion bench: single-threaded operation cost of the shared-memory
//! max-register implementations (Theorem 2's collect construction, the CAS
//! construction of Appendix B, and the fetch-max baseline).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use regemu_core::{CasMaxRegister, CollectMaxRegister, FetchMaxRegister, SharedMaxRegister};
use std::sync::Arc;

fn bench_write_max(c: &mut Criterion) {
    let mut group = c.benchmark_group("shared_memory/write_max");
    let implementations: Vec<(&str, Arc<dyn SharedMaxRegister>)> = vec![
        ("fetch_max", Arc::new(FetchMaxRegister::new(0))),
        ("cas_algorithm1", Arc::new(CasMaxRegister::new(0))),
        ("collect_k16", Arc::new(CollectMaxRegister::new(16, 0))),
    ];
    for (name, reg) in implementations {
        group.bench_with_input(BenchmarkId::from_parameter(name), &reg, |b, reg| {
            let mut value = 0u64;
            b.iter(|| {
                value += 1;
                reg.write_max(value);
            });
        });
    }
    group.finish();
}

fn bench_read_max(c: &mut Criterion) {
    let mut group = c.benchmark_group("shared_memory/read_max");
    // Read cost grows with k for the collect construction (it scans k
    // registers) but is constant for CAS/fetch-max — the other side of the
    // space/time trade-off.
    for k in [1usize, 16, 64, 256] {
        let reg = CollectMaxRegister::new(k, 0);
        group.bench_with_input(BenchmarkId::new("collect", k), &reg, |b, reg| {
            b.iter(|| reg.read_max());
        });
    }
    let cas = CasMaxRegister::new(0);
    group.bench_with_input(BenchmarkId::new("cas_algorithm1", 1), &cas, |b, reg| {
        b.iter(|| reg.read_max());
    });
    group.finish();
}

criterion_group!(benches, bench_write_max, bench_read_max);
criterion_main!(benches);
