//! Property-based tests of the simulation engine: whatever the environment
//! does (random delivery orders, random drops, random crashes within the
//! fault budget), the engine's bookkeeping invariants hold.

use proptest::prelude::*;
use regemu_fpsm::prelude::*;
use regemu_fpsm::Event;
use std::collections::BTreeSet;

/// A protocol that writes to every object of the topology and completes after
/// a configurable number of acknowledgements; reads a fixed object. Late
/// responses arriving after the operation completed are ignored (as any
/// well-formed protocol must do).
struct QuorumishClient {
    targets: Vec<ObjectId>,
    needed: usize,
    acks: usize,
    in_flight: bool,
}

impl ClientProtocol for QuorumishClient {
    fn on_invoke(&mut self, op: HighOp, ctx: &mut Context<'_>) {
        self.acks = 0;
        self.in_flight = true;
        match op {
            HighOp::Write(v) => {
                for (i, b) in self.targets.iter().enumerate() {
                    ctx.trigger(*b, BaseOp::Write(Value::new(v, i as u64)));
                }
            }
            HighOp::Read => {
                for b in &self.targets {
                    ctx.trigger(*b, BaseOp::Read);
                }
            }
        }
    }

    fn on_response(&mut self, _delivery: Delivery, ctx: &mut Context<'_>) {
        self.acks += 1;
        if self.in_flight && self.acks >= self.needed {
            self.in_flight = false;
            ctx.complete(HighResponse::WriteAck);
        }
    }
}

/// One environment decision of the random schedule.
#[derive(Clone, Copy, Debug)]
enum Choice {
    Deliver(usize),
    Drop(usize),
    CrashServer(usize),
    Invoke(usize),
}

fn choice_strategy() -> impl Strategy<Value = Choice> {
    prop_oneof![
        4 => (0usize..64).prop_map(Choice::Deliver),
        1 => (0usize..64).prop_map(Choice::Drop),
        1 => (0usize..8).prop_map(Choice::CrashServer),
        2 => (0usize..8).prop_map(Choice::Invoke),
    ]
}

fn build(n: usize, f: usize, clients: usize) -> (Simulation, Vec<ClientId>) {
    let mut topology = Topology::new(n);
    let objects = topology.add_object_per_server(ObjectKind::Register);
    let mut sim = Simulation::new(topology, SimConfig::with_fault_threshold(f));
    let ids = (0..clients)
        .map(|_| {
            sim.register_client(Box::new(QuorumishClient {
                targets: objects.clone(),
                needed: n - f,
                acks: 0,
                in_flight: false,
            }))
        })
        .collect();
    (sim, ids)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Engine invariants under arbitrary environment behaviour.
    #[test]
    fn engine_invariants_hold_under_random_environments(
        n in 3usize..7,
        choices in proptest::collection::vec(choice_strategy(), 1..80),
    ) {
        let f = (n - 1) / 2;
        let (mut sim, clients) = build(n, f, 3);
        let mut next_value = 1u64;

        for choice in choices {
            match choice {
                Choice::Deliver(i) => {
                    let ids: Vec<OpId> = sim.deliverable_ops().map(|p| p.op_id).collect();
                    if !ids.is_empty() {
                        sim.deliver(ids[i % ids.len()]).unwrap();
                    }
                }
                Choice::Drop(i) => {
                    let ids: Vec<OpId> = sim.pending_ops().map(|p| p.op_id).collect();
                    if !ids.is_empty() {
                        sim.drop_pending(ids[i % ids.len()]).unwrap();
                    }
                }
                Choice::CrashServer(i) => {
                    let server = ServerId::new(i % n);
                    // May fail if the budget is exhausted; both outcomes legal.
                    let _ = sim.crash_server(server);
                }
                Choice::Invoke(i) => {
                    let client = clients[i % clients.len()];
                    if sim.is_client_idle(client) {
                        let op = if i % 3 == 0 { HighOp::Read } else {
                            next_value += 1;
                            HighOp::Write(next_value)
                        };
                        sim.invoke(client, op).unwrap();
                    }
                }
            }

            // --- invariants checked after every single transition ---
            // 1. The fault budget is respected.
            prop_assert!(sim.crashed_server_count() <= f);
            // 2. Every pending operation was triggered and never responded.
            let responded: BTreeSet<OpId> = sim
                .history()
                .events()
                .filter_map(|e| match e {
                    Event::Respond { op_id, .. } => Some(*op_id),
                    _ => None,
                })
                .collect();
            for p in sim.pending_ops() {
                prop_assert!(!responded.contains(&p.op_id));
            }
            // 3. No response from a crashed object: every respond event's
            //    object must have been alive at that time (we check the
            //    weaker, state-based form: a respond never follows the
            //    crash of its server in the event order).
            let mut crashed: BTreeSet<ServerId> = BTreeSet::new();
            for e in sim.history().events() {
                match e {
                    Event::ServerCrash { server, .. } => {
                        crashed.insert(*server);
                    }
                    Event::Respond { object, .. } => {
                        prop_assert!(!crashed.contains(&sim.topology().server_of(*object)));
                    }
                    _ => {}
                }
            }
            // 4. Metrics consistency: covered ⊆ written ⊆ touched, and the
            //    resource consumption never exceeds the provisioned objects.
            let m = RunMetrics::capture(&sim);
            prop_assert!(m.covered.iter().all(|b| m.written.contains(b)));
            prop_assert!(m.written.iter().all(|b| m.touched.contains(b)));
            prop_assert!(m.resource_consumption() <= sim.topology().object_count());
            prop_assert!(m.low_level_responses <= m.low_level_triggers);
            // 5. Each client has at most one outstanding high-level op.
            let pending_high = sim
                .history()
                .high_intervals()
                .iter()
                .filter(|iv| !iv.is_complete())
                .map(|iv| iv.client)
                .collect::<Vec<_>>();
            let mut unique = pending_high.clone();
            unique.sort_unstable();
            unique.dedup();
            prop_assert_eq!(pending_high.len(), unique.len());
        }
    }

    /// A fair driver eventually completes every quorum-waiting operation as
    /// long as crashes stay within the budget, regardless of the seed.
    #[test]
    fn fair_driver_is_live_within_the_fault_budget(
        n in 3usize..7,
        seed in 0u64..500,
        crash_first in proptest::bool::ANY,
    ) {
        let f = (n - 1) / 2;
        let (mut sim, clients) = build(n, f, 1);
        if crash_first {
            sim.crash_server(ServerId::new(seed as usize % n)).unwrap();
        }
        let mut driver = FairDriver::new(seed);
        let op = sim.invoke(clients[0], HighOp::Write(9)).unwrap();
        driver.run_until_complete(&mut sim, op, 10_000).unwrap();
        prop_assert_eq!(sim.result_of(op), Some(HighResponse::WriteAck));
    }

    /// Replaying the same seed yields the identical event trace
    /// (reproducibility of experiments).
    #[test]
    fn runs_are_reproducible_per_seed(n in 3usize..6, seed in 0u64..200) {
        let run = |seed: u64| {
            let f = (n - 1) / 2;
            let (mut sim, clients) = build(n, f, 2);
            let mut driver = FairDriver::new(seed);
            for (i, c) in clients.iter().enumerate() {
                let op = sim.invoke(*c, HighOp::Write(i as u64 + 1)).unwrap();
                driver.run_until_complete(&mut sim, op, 10_000).unwrap();
            }
            sim.history().events().copied().collect::<Vec<_>>()
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}
