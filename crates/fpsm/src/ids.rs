//! Strongly typed identifiers for the components of a fault-prone shared
//! memory system: clients, servers, base objects, low-level operations and
//! high-level (emulated) operations.
//!
//! All identifiers are small newtypes over integers so they are `Copy`,
//! hashable and cheap to move around, while still being statically
//! distinguishable from one another (a [`ServerId`] can never be confused
//! with an [`ObjectId`]).

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:expr, $inner:ty) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(pub $inner);

        impl $name {
            /// Creates a new identifier from its raw index.
            pub const fn new(raw: $inner) -> Self {
                Self(raw)
            }

            /// Returns the raw index wrapped by this identifier.
            pub const fn index(self) -> $inner {
                self.0
            }
        }

        impl From<$inner> for $name {
            fn from(raw: $inner) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for $inner {
            fn from(id: $name) -> $inner {
                id.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a client process (a reader or writer of the emulated register).
    ClientId,
    "c",
    usize
);

id_type!(
    /// Identifier of a fault-prone server. Crashing a server crashes every
    /// base object mapped to it by the placement function `δ`.
    ServerId,
    "s",
    usize
);

id_type!(
    /// Identifier of a base object (read/write register, max-register or CAS)
    /// hosted by some server.
    ObjectId,
    "b",
    usize
);

id_type!(
    /// Identifier of a *low-level* operation: a single `trigger`/`respond`
    /// pair on a base object.
    OpId,
    "op",
    u64
);

id_type!(
    /// Identifier of a *high-level* operation: an emulated `read` or `write`
    /// invoked on the emulated register.
    HighOpId,
    "hop",
    u64
);

/// Logical time inside a simulation run. A run is a sequence of steps
/// (actions); the time `t` refers to the configuration reached after `t`
/// steps, exactly as in the paper's model.
pub type Time = u64;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_roundtrip_through_raw_values() {
        let c = ClientId::new(7);
        assert_eq!(c.index(), 7);
        assert_eq!(ClientId::from(7usize), c);
        assert_eq!(usize::from(c), 7);
    }

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(ClientId::new(3).to_string(), "c3");
        assert_eq!(ServerId::new(0).to_string(), "s0");
        assert_eq!(ObjectId::new(12).to_string(), "b12");
        assert_eq!(OpId::new(4).to_string(), "op4");
        assert_eq!(HighOpId::new(9).to_string(), "hop9");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        let mut set = HashSet::new();
        set.insert(ObjectId::new(1));
        set.insert(ObjectId::new(2));
        set.insert(ObjectId::new(1));
        assert_eq!(set.len(), 2);
        assert!(ObjectId::new(1) < ObjectId::new(2));
    }

    #[test]
    fn default_ids_are_zero() {
        assert_eq!(ClientId::default(), ClientId::new(0));
        assert_eq!(OpId::default(), OpId::new(0));
    }
}
