//! Client-side protocol interface.
//!
//! An emulation algorithm `A` defines the behaviour of clients as
//! deterministic state machines whose transitions trigger low-level
//! operations and eventually return the high-level operation. The
//! [`ClientProtocol`] trait captures exactly that: the simulation calls
//! [`ClientProtocol::on_invoke`] when a high-level operation is invoked on the
//! client and [`ClientProtocol::on_response`] whenever one of the client's
//! pending low-level operations responds. Both callbacks receive a
//! [`Context`] through which the protocol can trigger further low-level
//! operations and/or return the high-level operation.
//!
//! Because base objects are crash-prone, a client may have *many* low-level
//! operations pending at once (it must never block on a single object), which
//! is why triggering is a non-blocking effect rather than a call that yields a
//! response.

use crate::ids::{ClientId, ObjectId, OpId, ServerId, Time};
use crate::op::{BaseOp, BaseResponse, HighOp, HighResponse};

/// A low-level response being delivered to the client that triggered it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// Identifier of the low-level operation that responded.
    pub op_id: OpId,
    /// The base object it was triggered on.
    pub object: ObjectId,
    /// The server hosting that object.
    pub server: ServerId,
    /// The operation that was triggered (echoed back for convenience).
    pub op: BaseOp,
    /// The response produced by the (atomic) base object.
    pub response: BaseResponse,
}

/// Effect collector handed to a [`ClientProtocol`] during a callback.
///
/// The protocol uses it to trigger low-level operations ([`Context::trigger`])
/// and to return the current high-level operation ([`Context::complete`]).
/// Effects are applied by the simulation after the callback returns.
#[derive(Debug)]
pub struct Context<'a> {
    client: ClientId,
    time: Time,
    next_op_id: &'a mut u64,
    triggers: Vec<(OpId, ObjectId, BaseOp)>,
    completion: Option<HighResponse>,
}

impl<'a> Context<'a> {
    /// Creates a context for `client` at logical time `time`.
    ///
    /// This is called by the simulation engine; protocol code only consumes
    /// contexts.
    pub(crate) fn new(client: ClientId, time: Time, next_op_id: &'a mut u64) -> Self {
        Context {
            client,
            time,
            next_op_id,
            triggers: Vec::new(),
            completion: None,
        }
    }

    /// The client this context belongs to.
    pub fn client(&self) -> ClientId {
        self.client
    }

    /// The current logical time (number of steps executed so far).
    pub fn time(&self) -> Time {
        self.time
    }

    /// Triggers a low-level operation `op` on `object` and returns its
    /// freshly assigned [`OpId`].
    ///
    /// The operation becomes *pending*; its response (if any) will be
    /// delivered later through [`ClientProtocol::on_response`]. A pending
    /// write-class operation *covers* its object until it responds.
    pub fn trigger(&mut self, object: ObjectId, op: BaseOp) -> OpId {
        let id = OpId::new(*self.next_op_id);
        *self.next_op_id += 1;
        self.triggers.push((id, object, op));
        id
    }

    /// Completes the client's current high-level operation with `response`.
    ///
    /// # Panics
    ///
    /// Panics if the protocol completes the same high-level operation twice
    /// within a single callback.
    pub fn complete(&mut self, response: HighResponse) {
        assert!(
            self.completion.is_none(),
            "client {} completed its high-level operation twice",
            self.client
        );
        self.completion = Some(response);
    }

    /// Returns `true` if [`Context::complete`] was called.
    pub fn has_completed(&self) -> bool {
        self.completion.is_some()
    }

    /// Consumes the context, returning the accumulated effects.
    pub(crate) fn into_effects(self) -> (Vec<(OpId, ObjectId, BaseOp)>, Option<HighResponse>) {
        (self.triggers, self.completion)
    }
}

/// The deterministic state machine an emulation algorithm installs at each
/// client.
///
/// A single protocol instance lives for the whole run (its local state — e.g.
/// the `coverSet` of Algorithm 2 — persists across high-level operations).
pub trait ClientProtocol {
    /// A high-level operation `op` has been invoked at this client.
    fn on_invoke(&mut self, op: HighOp, ctx: &mut Context<'_>);

    /// One of this client's pending low-level operations has responded.
    fn on_response(&mut self, delivery: Delivery, ctx: &mut Context<'_>);

    /// Short human-readable protocol name, used in logs and error messages.
    fn name(&self) -> &'static str {
        "client-protocol"
    }
}

/// A trivial protocol that completes every high-level operation immediately
/// without touching any base object. Reads return the initial payload `0`.
///
/// Useful as a stub in engine tests and as the degenerate `k = 0` emulation.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopProtocol;

impl ClientProtocol for NoopProtocol {
    fn on_invoke(&mut self, op: HighOp, ctx: &mut Context<'_>) {
        match op {
            HighOp::Write(_) => ctx.complete(HighResponse::WriteAck),
            HighOp::Read => ctx.complete(HighResponse::ReadValue(0)),
        }
    }

    fn on_response(&mut self, _delivery: Delivery, _ctx: &mut Context<'_>) {}

    fn name(&self) -> &'static str {
        "noop"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn context_assigns_increasing_op_ids() {
        let mut next = 5;
        let mut ctx = Context::new(ClientId::new(1), 10, &mut next);
        let a = ctx.trigger(ObjectId::new(0), BaseOp::Read);
        let b = ctx.trigger(ObjectId::new(1), BaseOp::Write(Value::new(1, 1)));
        assert_eq!(a, OpId::new(5));
        assert_eq!(b, OpId::new(6));
        assert_eq!(ctx.client(), ClientId::new(1));
        assert_eq!(ctx.time(), 10);
        let (triggers, completion) = ctx.into_effects();
        assert_eq!(triggers.len(), 2);
        assert!(completion.is_none());
        assert_eq!(next, 7);
    }

    #[test]
    fn context_records_completion() {
        let mut next = 0;
        let mut ctx = Context::new(ClientId::new(0), 0, &mut next);
        assert!(!ctx.has_completed());
        ctx.complete(HighResponse::WriteAck);
        assert!(ctx.has_completed());
        let (_, completion) = ctx.into_effects();
        assert_eq!(completion, Some(HighResponse::WriteAck));
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn double_completion_panics() {
        let mut next = 0;
        let mut ctx = Context::new(ClientId::new(0), 0, &mut next);
        ctx.complete(HighResponse::WriteAck);
        ctx.complete(HighResponse::ReadValue(1));
    }

    #[test]
    fn noop_protocol_completes_immediately() {
        let mut p = NoopProtocol;
        let mut next = 0;
        let mut ctx = Context::new(ClientId::new(0), 0, &mut next);
        p.on_invoke(HighOp::Read, &mut ctx);
        let (triggers, completion) = ctx.into_effects();
        assert!(triggers.is_empty());
        assert_eq!(completion, Some(HighResponse::ReadValue(0)));
        assert_eq!(p.name(), "noop");
    }
}
