//! Space audit: watch the lower-bound adversary force the space consumption
//! of a register-based emulation to grow with the number of writers.
//!
//! ```text
//! cargo run --example space_audit
//! ```
//!
//! The example runs the Lemma 1 campaign (the adversary `Ad_i`) against the
//! space-optimal construction and against ABD over max-registers, printing
//! the number of covered registers after every adversary-driven write. The
//! register-based emulation is forced to `≥ i·f` covered registers after the
//! `i`-th write (this is exactly where the `kf` term of Theorem 1 comes
//! from), while the max-register emulation stays flat — the separation of
//! Table 1, observable on real runs.

use regemu::prelude::*;
use regemu_workloads::TextTable;

fn audit(emulation: &dyn Emulation) -> Result<(), Box<dyn std::error::Error>> {
    let params = emulation.params();
    let campaign = LowerBoundCampaign::new(emulation);
    let report = campaign.run(emulation)?;

    let mut table = TextTable::new(
        format!(
            "Ad_i campaign against `{}` ({params}), F = {:?}",
            emulation.name(),
            report.protected
        ),
        &[
            "write #",
            "covered",
            "newly covered",
            "i*f",
            "resources",
            "contention",
        ],
    );
    for it in &report.iterations {
        table.push_row([
            it.iteration.to_string(),
            it.covered.to_string(),
            it.newly_covered.to_string(),
            (it.iteration * params.f).to_string(),
            it.resource_consumption.to_string(),
            it.point_contention.to_string(),
        ]);
    }
    println!("{table}");
    println!(
        "final: {} covered registers, {} base objects used, lower bound {}, upper bound {}\n",
        report.final_covered,
        report.final_resource_consumption,
        register_lower_bound(params),
        register_upper_bound(params),
    );
    Ok(())
}

/// The same adversarial pressure, expressed as a [`Scenario`]: the covering
/// adversary scheduler withholds write responses on `f` servers, so every
/// completed write leaves registers covered — the sweepable form of the
/// campaign above.
fn scenario_audit(kind: EmulationKind, params: Params) -> Result<(), Box<dyn std::error::Error>> {
    let report = Scenario::new(params)
        .emulation(kind)
        .workload(WorkloadSpec::WriteSequential {
            rounds: 1,
            read_after_each: false,
        })
        .scheduler(SchedulerSpec::CoverAdversary)
        .check(ConsistencyCheck::WsRegular)
        .seed(1)
        .drain()
        .run()?;
    assert!(report.is_consistent());
    println!(
        "Scenario under {}: `{}` ends with {} covered registers ({} consumed)\n",
        SchedulerSpec::CoverAdversary,
        kind,
        report.metrics.covered_count(),
        report.metrics.resource_consumption(),
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = Params::new(6, 1, 4)?;

    // Plain registers: coverage grows by f per completed write.
    let space_optimal = SpaceOptimalEmulation::new(params);
    audit(&space_optimal)?;

    // Max-registers: the adversary cannot make the space grow.
    let abd = AbdMaxRegisterEmulation::new(params, false);
    audit(&abd)?;

    // The packaged form: the same covering pressure as a scheduler axis.
    scenario_audit(EmulationKind::SpaceOptimal, params)?;

    println!(
        "Takeaway: with read/write base registers the space cost is Θ(k·f); \
         with RMW-style base objects it is 2f + 1 regardless of k."
    );
    Ok(())
}
