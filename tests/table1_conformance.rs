//! Integration test: the measured space consumption of every implemented
//! emulation conforms to Table 1 of the paper, over a sweep of `(k, f, n)`.

use regemu::prelude::*;

/// Runs a write-sequential workload (every writer writes once, one read after
/// each write) and returns the measured resource consumption.
fn measure(emulation: &dyn Emulation, seed: u64) -> usize {
    let params = emulation.params();
    let workload = Workload::write_sequential(params.k, 1, true);
    let report = run_workload(
        emulation,
        &workload,
        &RunConfig::with_seed(seed).check(ConsistencyCheck::WsRegular),
    )
    .expect("workload must complete");
    assert!(
        report.is_consistent(),
        "{} at {params} violated WS-Regularity: {:?}",
        emulation.name(),
        report.check_violation
    );
    report.metrics.resource_consumption()
}

#[test]
fn max_register_and_cas_emulations_use_2f_plus_1_objects() {
    for params in small_sweep() {
        let abd_max = AbdMaxRegisterEmulation::new(params, false);
        let abd_cas = AbdCasEmulation::new(params, false);
        assert_eq!(
            measure(&abd_max, 1),
            max_register_bound(params.f),
            "{params}"
        );
        assert_eq!(measure(&abd_cas, 2), cas_bound(params.f), "{params}");
    }
}

#[test]
fn space_optimal_construction_matches_theorem_3_and_respects_theorem_1() {
    for params in small_sweep() {
        let emulation = SpaceOptimalEmulation::new(params);
        let consumption = measure(&emulation, 3);
        assert_eq!(consumption, register_upper_bound(params), "{params}");
        assert!(consumption >= register_lower_bound(params), "{params}");
        // Provisioning matches consumption: the construction has no unused
        // registers.
        assert_eq!(emulation.base_object_count(), consumption, "{params}");
    }
}

#[test]
fn register_emulations_are_separated_from_rmw_emulations_for_k_above_1() {
    // The headline separation of the paper: the space cost of register-based
    // emulations grows with k, the RMW-based ones stay at 2f + 1.
    for params in small_sweep().into_iter().filter(|p| p.k > 1) {
        let register_cost = SpaceOptimalEmulation::new(params).base_object_count();
        let rmw_cost = AbdMaxRegisterEmulation::new(params, false).base_object_count();
        assert!(
            register_cost > rmw_cost,
            "expected separation at {params}: {register_cost} vs {rmw_cost}"
        );
    }
}

#[test]
fn bounds_coincide_at_the_two_special_cases_and_measurements_agree() {
    // n = 2f + 1 and n ≥ kf + f + 1 are the cases where the paper's bounds
    // are tight; the implementation hits them exactly.
    for (k, f) in [(2usize, 1usize), (3, 1), (2, 2)] {
        let minimal = Params::new(k, f, 2 * f + 1).unwrap();
        assert!(minimal.bounds_coincide());
        let consumption = measure(&SpaceOptimalEmulation::new(minimal), 7);
        assert_eq!(consumption, (2 * f + 1) * k);

        let saturated = Params::new(k, f, k * f + f + 1).unwrap();
        assert!(saturated.bounds_coincide());
        let consumption = measure(&SpaceOptimalEmulation::new(saturated), 8);
        assert_eq!(consumption, k * f + f + 1);
    }
}

#[test]
fn register_bank_construction_uses_k_registers_per_server() {
    for params in small_sweep().into_iter().filter(|p| p.n == 2 * p.f + 1) {
        let emulation = RegisterBankEmulation::new(params, false);
        assert_eq!(emulation.base_object_count(), params.n * params.k);
        let consumption = measure(&emulation, 4);
        // The ABD phases read every bank register, so consumption equals the
        // provisioned (2f+1)·k — the special-case matching upper bound.
        assert_eq!(consumption, (2 * params.f + 1) * params.k, "{params}");
    }
}

#[test]
fn all_emulations_tolerate_exactly_f_crashes() {
    let params = Params::new(2, 1, 4).unwrap();
    for emulation in all_emulations(params) {
        let workload = Workload::write_sequential(params.k, 2, true);
        // Crash one server early in the run.
        let plan = CrashPlan::none().crash_at(3, ServerId::new(params.n - 1));
        let report = run_workload(
            emulation.as_ref(),
            &workload,
            &RunConfig::with_seed(5)
                .crash_plan(plan)
                .check(ConsistencyCheck::WsRegular),
        )
        .expect("an f-tolerant emulation must survive f crashes");
        assert!(report.is_consistent(), "{}", emulation.name());
        assert_eq!(report.completed_ops, workload.len());
    }
}
