//! Per-server `read-max` / `write-max` drivers.
//!
//! The observation at the heart of the paper's upper bounds for RMW-style
//! base objects is that the per-server code of multi-writer ABD only needs
//! the two max-register primitives `write-max` and `read-max`. A
//! [`MaxDriver`] realizes those two primitives against whatever a given
//! server actually stores:
//!
//! * [`NativeMaxDriver`] — the server stores a real max-register (1 object);
//! * [`CasMaxDriver`] — the server stores a single CAS object; the driver runs
//!   Algorithm 1 (Appendix B) as a client-side retry loop;
//! * [`BankMaxDriver`] — the server stores a bank of `k` plain read/write
//!   registers, one per writer; `write-max` updates the caller's own slot and
//!   `read-max` collects the whole bank (the construction behind the
//!   `(2f+1)·k` special case for `n = 2f+1`).
//!
//! The ABD protocol in [`crate::abd`] is generic over the driver, which is how
//! a single protocol implementation yields the max-register, CAS and
//! register-bank rows of Table 1.

use regemu_fpsm::{BaseOp, BaseResponse, Context, Delivery, ObjectId, OpId, ServerId, Value};
use std::collections::{BTreeMap, BTreeSet};

/// Completion of a per-server max primitive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MaxOutcome {
    /// A `read-max` completed with the given value.
    ReadMax(Value),
    /// A `write-max` completed.
    WriteMaxDone,
}

/// A per-server driver realizing `read-max`/`write-max` from the server's
/// base objects.
///
/// A driver executes at most one primitive at a time; starting a new one (or
/// calling [`MaxDriver::reset`]) abandons the previous one, whose stale
/// responses are subsequently ignored.
pub trait MaxDriver {
    /// The server this driver talks to.
    fn server(&self) -> ServerId;

    /// The base objects this driver may touch.
    fn objects(&self) -> Vec<ObjectId>;

    /// Starts a `read-max` on this server.
    fn start_read_max(&mut self, ctx: &mut Context<'_>);

    /// Starts a `write-max(value)` on this server.
    fn start_write_max(&mut self, value: Value, ctx: &mut Context<'_>);

    /// Feeds a low-level response to the driver. Returns the outcome when the
    /// current primitive completes, `None` when the response is stale or the
    /// primitive still needs more steps.
    fn on_response(&mut self, delivery: &Delivery, ctx: &mut Context<'_>) -> Option<MaxOutcome>;

    /// Abandons the current primitive (stale responses will be ignored).
    fn reset(&mut self);

    /// Short name of the driver flavour, for diagnostics.
    fn flavour(&self) -> &'static str;
}

// ---------------------------------------------------------------------------
// Native max-register
// ---------------------------------------------------------------------------

/// Driver for a server hosting a single native max-register.
#[derive(Debug)]
pub struct NativeMaxDriver {
    server: ServerId,
    object: ObjectId,
    pending: Option<OpId>,
}

impl NativeMaxDriver {
    /// Creates a driver for the max-register `object` hosted on `server`.
    pub fn new(server: ServerId, object: ObjectId) -> Self {
        NativeMaxDriver {
            server,
            object,
            pending: None,
        }
    }
}

impl MaxDriver for NativeMaxDriver {
    fn server(&self) -> ServerId {
        self.server
    }

    fn objects(&self) -> Vec<ObjectId> {
        vec![self.object]
    }

    fn start_read_max(&mut self, ctx: &mut Context<'_>) {
        self.pending = Some(ctx.trigger(self.object, BaseOp::ReadMax));
    }

    fn start_write_max(&mut self, value: Value, ctx: &mut Context<'_>) {
        self.pending = Some(ctx.trigger(self.object, BaseOp::WriteMax(value)));
    }

    fn on_response(&mut self, delivery: &Delivery, _ctx: &mut Context<'_>) -> Option<MaxOutcome> {
        if self.pending != Some(delivery.op_id) {
            return None;
        }
        self.pending = None;
        match delivery.response {
            BaseResponse::MaxValue(v) => Some(MaxOutcome::ReadMax(v)),
            BaseResponse::WriteMaxAck => Some(MaxOutcome::WriteMaxDone),
            _ => None,
        }
    }

    fn reset(&mut self) {
        self.pending = None;
    }

    fn flavour(&self) -> &'static str {
        "native-max"
    }
}

// ---------------------------------------------------------------------------
// Max-register from a single CAS (Algorithm 1, Appendix B)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CasPhase {
    /// `read-max`: a single `CAS(v0, v0)` returning the current value.
    Read,
    /// `write-max` loop, line 3: `tmp ← CAS(v0, v0)`.
    WriteProbe,
    /// `write-max` loop, line 6: `CAS(tmp, v)`.
    WriteSwap,
}

/// Driver realizing a max-register from a single CAS object via Algorithm 1.
///
/// `read-max` is one `CAS(v0, v0)`. `write-max(v)` loops: probe the current
/// value; if it is already `≥ v` the write is done, otherwise attempt
/// `CAS(current, v)` and probe again. The loop terminates because the stored
/// value grows monotonically, but its length depends on contention — the
/// time/space trade-off discussed in Section 5.
#[derive(Debug)]
pub struct CasMaxDriver {
    server: ServerId,
    object: ObjectId,
    pending: Option<OpId>,
    phase: Option<CasPhase>,
    target: Value,
    /// Number of CAS operations issued by the current `write-max`; exposed so
    /// benches can measure the retry cost.
    attempts: u64,
}

impl CasMaxDriver {
    /// Creates a driver for the CAS `object` hosted on `server`.
    pub fn new(server: ServerId, object: ObjectId) -> Self {
        CasMaxDriver {
            server,
            object,
            pending: None,
            phase: None,
            target: Value::INITIAL,
            attempts: 0,
        }
    }

    /// Number of CAS operations issued by the most recent `write-max`.
    pub fn attempts(&self) -> u64 {
        self.attempts
    }

    fn probe(&mut self, ctx: &mut Context<'_>) {
        self.pending = Some(ctx.trigger(
            self.object,
            BaseOp::Cas {
                expected: Value::INITIAL,
                new: Value::INITIAL,
            },
        ));
        self.attempts += 1;
    }
}

impl MaxDriver for CasMaxDriver {
    fn server(&self) -> ServerId {
        self.server
    }

    fn objects(&self) -> Vec<ObjectId> {
        vec![self.object]
    }

    fn start_read_max(&mut self, ctx: &mut Context<'_>) {
        self.phase = Some(CasPhase::Read);
        self.attempts = 0;
        self.probe(ctx);
    }

    fn start_write_max(&mut self, value: Value, ctx: &mut Context<'_>) {
        self.phase = Some(CasPhase::WriteProbe);
        self.target = value;
        self.attempts = 0;
        self.probe(ctx);
    }

    fn on_response(&mut self, delivery: &Delivery, ctx: &mut Context<'_>) -> Option<MaxOutcome> {
        if self.pending != Some(delivery.op_id) {
            return None;
        }
        self.pending = None;
        let BaseResponse::CasOld(current) = delivery.response else {
            return None;
        };
        match self.phase? {
            CasPhase::Read => {
                self.phase = None;
                Some(MaxOutcome::ReadMax(current))
            }
            CasPhase::WriteProbe => {
                if current >= self.target {
                    // Line 4–5 of Algorithm 1: somebody (possibly us) already
                    // installed a value at least as large.
                    self.phase = None;
                    Some(MaxOutcome::WriteMaxDone)
                } else {
                    // Line 6: attempt to install our value.
                    self.phase = Some(CasPhase::WriteSwap);
                    self.pending = Some(ctx.trigger(
                        self.object,
                        BaseOp::Cas {
                            expected: current,
                            new: self.target,
                        },
                    ));
                    self.attempts += 1;
                    None
                }
            }
            CasPhase::WriteSwap => {
                // Whatever the swap returned, go back to the probe (line 2).
                self.phase = Some(CasPhase::WriteProbe);
                self.probe(ctx);
                None
            }
        }
    }

    fn reset(&mut self) {
        self.pending = None;
        self.phase = None;
    }

    fn flavour(&self) -> &'static str {
        "cas-max"
    }
}

// ---------------------------------------------------------------------------
// Max-register from a bank of k plain registers
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BankPhase {
    /// `read-max`: reading the whole bank.
    Collect,
    /// `write-max`: reading the caller's own slot before updating it.
    ReadOwn,
    /// `write-max`: waiting for the write to the own slot to ack.
    WriteOwn,
}

/// Driver realizing a `k`-writer max-register from `k` plain registers, one
/// per writer (the collect-based construction matching Theorem 2's bound).
///
/// `write-max(v)` reads the caller's own slot and writes back
/// `max(slot, v)`; `read-max` reads every slot and returns the maximum.
/// Readers construct the driver without an own slot and may only `read-max`.
#[derive(Debug)]
pub struct BankMaxDriver {
    server: ServerId,
    registers: Vec<ObjectId>,
    own_slot: Option<usize>,
    phase: Option<BankPhase>,
    pending: BTreeMap<OpId, ObjectId>,
    outstanding: BTreeSet<ObjectId>,
    best: Value,
    target: Value,
}

impl BankMaxDriver {
    /// Creates a driver over the `registers` bank on `server`; `own_slot` is
    /// the index of the register owned by this client when it acts as writer
    /// `own_slot` (readers pass `None`).
    ///
    /// # Panics
    ///
    /// Panics if `own_slot` is out of range or the bank is empty.
    pub fn new(server: ServerId, registers: Vec<ObjectId>, own_slot: Option<usize>) -> Self {
        assert!(
            !registers.is_empty(),
            "a register bank must hold at least one register"
        );
        if let Some(slot) = own_slot {
            assert!(slot < registers.len(), "own slot {slot} out of range");
        }
        BankMaxDriver {
            server,
            registers,
            own_slot,
            phase: None,
            pending: BTreeMap::new(),
            outstanding: BTreeSet::new(),
            best: Value::INITIAL,
            target: Value::INITIAL,
        }
    }
}

impl MaxDriver for BankMaxDriver {
    fn server(&self) -> ServerId {
        self.server
    }

    fn objects(&self) -> Vec<ObjectId> {
        self.registers.clone()
    }

    fn start_read_max(&mut self, ctx: &mut Context<'_>) {
        self.phase = Some(BankPhase::Collect);
        self.pending.clear();
        self.outstanding = self.registers.iter().copied().collect();
        self.best = Value::INITIAL;
        for b in &self.registers {
            let op = ctx.trigger(*b, BaseOp::Read);
            self.pending.insert(op, *b);
        }
    }

    fn start_write_max(&mut self, value: Value, ctx: &mut Context<'_>) {
        let slot = self
            .own_slot
            .expect("write-max on a register bank requires an own slot (writers only)");
        self.phase = Some(BankPhase::ReadOwn);
        self.pending.clear();
        self.target = value;
        let own = self.registers[slot];
        let op = ctx.trigger(own, BaseOp::Read);
        self.pending.insert(op, own);
    }

    fn on_response(&mut self, delivery: &Delivery, ctx: &mut Context<'_>) -> Option<MaxOutcome> {
        let object = self.pending.remove(&delivery.op_id)?;
        match self.phase? {
            BankPhase::Collect => {
                if let BaseResponse::ReadValue(v) = delivery.response {
                    self.best = self.best.max(v);
                }
                self.outstanding.remove(&object);
                if self.outstanding.is_empty() {
                    self.phase = None;
                    Some(MaxOutcome::ReadMax(self.best))
                } else {
                    None
                }
            }
            BankPhase::ReadOwn => {
                let current = match delivery.response {
                    BaseResponse::ReadValue(v) => v,
                    _ => Value::INITIAL,
                };
                if current >= self.target {
                    // The own slot already stores a value at least as large.
                    self.phase = None;
                    return Some(MaxOutcome::WriteMaxDone);
                }
                let slot = self.own_slot.expect("checked in start_write_max");
                let own = self.registers[slot];
                let op = ctx.trigger(own, BaseOp::Write(self.target));
                self.pending.insert(op, own);
                self.phase = Some(BankPhase::WriteOwn);
                None
            }
            BankPhase::WriteOwn => {
                self.phase = None;
                Some(MaxOutcome::WriteMaxDone)
            }
        }
    }

    fn reset(&mut self) {
        self.phase = None;
        self.pending.clear();
        self.outstanding.clear();
    }

    fn flavour(&self) -> &'static str {
        "register-bank-max"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regemu_fpsm::prelude::*;
    use regemu_fpsm::{ClientProtocol, HighOp, HighResponse};

    /// A protocol wrapping a single driver, used to unit-test drivers inside
    /// the real simulation engine: a high-level write maps to `write-max` and
    /// a high-level read to `read-max` on the one server.
    struct DriverHarness<D: MaxDriver> {
        driver: D,
    }

    impl<D: MaxDriver> ClientProtocol for DriverHarness<D> {
        fn on_invoke(&mut self, op: HighOp, ctx: &mut Context<'_>) {
            self.driver.reset();
            match op {
                HighOp::Write(v) => self.driver.start_write_max(Value::new(v, v), ctx),
                HighOp::Read => self.driver.start_read_max(ctx),
            }
        }

        fn on_response(&mut self, delivery: Delivery, ctx: &mut Context<'_>) {
            match self.driver.on_response(&delivery, ctx) {
                Some(MaxOutcome::WriteMaxDone) => ctx.complete(HighResponse::WriteAck),
                Some(MaxOutcome::ReadMax(v)) => ctx.complete(HighResponse::ReadValue(v.val)),
                None => {}
            }
        }
    }

    fn run_write_then_read<D, F>(kind: ObjectKind, objects_per_server: usize, make: F) -> u64
    where
        D: MaxDriver + 'static,
        F: Fn(ServerId, Vec<ObjectId>) -> D,
    {
        let mut t = Topology::new(1);
        let objs: Vec<ObjectId> = (0..objects_per_server)
            .map(|_| t.add_object(kind, ServerId::new(0)))
            .collect();
        let mut sim = Simulation::new(t, SimConfig::unchecked());
        let c = sim.register_client(Box::new(DriverHarness {
            driver: make(ServerId::new(0), objs.clone()),
        }));
        let mut driver = FairDriver::new(3);

        for v in [5u64, 3u64] {
            let w = sim.invoke(c, HighOp::Write(v)).unwrap();
            driver.run_until_complete(&mut sim, w, 1000).unwrap();
        }
        let r = sim.invoke(c, HighOp::Read).unwrap();
        driver.run_until_complete(&mut sim, r, 1000).unwrap();
        sim.result_of(r).unwrap().payload().unwrap()
    }

    #[test]
    fn native_driver_keeps_the_maximum() {
        let best = run_write_then_read(ObjectKind::MaxRegister, 1, |s, objs| {
            NativeMaxDriver::new(s, objs[0])
        });
        assert_eq!(best, 5);
    }

    #[test]
    fn cas_driver_implements_algorithm_1() {
        let best = run_write_then_read(ObjectKind::Cas, 1, |s, objs| CasMaxDriver::new(s, objs[0]));
        assert_eq!(best, 5);
    }

    #[test]
    fn bank_driver_collects_the_maximum_across_slots() {
        let best = run_write_then_read(ObjectKind::Register, 3, |s, objs| {
            BankMaxDriver::new(s, objs, Some(1))
        });
        assert_eq!(best, 5);
    }

    #[test]
    fn cas_write_max_skips_when_value_already_large() {
        // Write 5 then 3: the second write-max must finish after a single
        // probe without attempting a swap.
        let mut t = Topology::new(1);
        let obj = t.add_object(ObjectKind::Cas, ServerId::new(0));
        let mut sim = Simulation::new(t, SimConfig::unchecked());
        let c = sim.register_client(Box::new(DriverHarness {
            driver: CasMaxDriver::new(ServerId::new(0), obj),
        }));
        let mut driver = FairDriver::new(1);
        let w1 = sim.invoke(c, HighOp::Write(5)).unwrap();
        driver.run_until_complete(&mut sim, w1, 100).unwrap();
        let before = sim.object(obj).unwrap().applied_writes();
        let w2 = sim.invoke(c, HighOp::Write(3)).unwrap();
        driver.run_until_complete(&mut sim, w2, 100).unwrap();
        let after = sim.object(obj).unwrap().applied_writes();
        // One probe CAS only (it is still counted as an applied op on the CAS
        // object but does not change the value).
        assert_eq!(after - before, 1);
        assert_eq!(sim.object(obj).unwrap().value(), Value::new(5, 5));
    }

    #[test]
    fn stale_responses_are_ignored_after_reset() {
        let mut t = Topology::new(1);
        let obj = t.add_object(ObjectKind::MaxRegister, ServerId::new(0));
        let mut sim = Simulation::new(t, SimConfig::unchecked());

        // Protocol that triggers a read-max, then resets the driver before the
        // response arrives and completes only if the driver (incorrectly)
        // reports an outcome.
        struct ResetHarness {
            driver: NativeMaxDriver,
            started: bool,
        }
        impl ClientProtocol for ResetHarness {
            fn on_invoke(&mut self, _op: HighOp, ctx: &mut Context<'_>) {
                self.driver.start_read_max(ctx);
                self.driver.reset();
                self.started = true;
                // Trigger a second read-max; only its response should count.
                self.driver.start_read_max(ctx);
            }
            fn on_response(&mut self, delivery: Delivery, ctx: &mut Context<'_>) {
                if self.driver.on_response(&delivery, ctx).is_some() && !ctx.has_completed() {
                    ctx.complete(HighResponse::ReadValue(0));
                }
            }
        }

        let c = sim.register_client(Box::new(ResetHarness {
            driver: NativeMaxDriver::new(ServerId::new(0), obj),
            started: false,
        }));
        let r = sim.invoke(c, HighOp::Read).unwrap();
        // Two pending read-max ops; deliver both in trigger order: the first
        // (stale) one must be ignored, the second completes the operation.
        let ops: Vec<OpId> = sim.pending_ops().map(|p| p.op_id).collect();
        assert_eq!(ops.len(), 2);
        sim.deliver(ops[0]).unwrap();
        assert!(
            sim.result_of(r).is_none(),
            "stale response must not complete the op"
        );
        sim.deliver(ops[1]).unwrap();
        assert!(sim.result_of(r).is_some());
    }

    #[test]
    #[should_panic(expected = "own slot")]
    fn bank_writer_without_slot_panics_on_write_max() {
        let mut t = Topology::new(1);
        let obj = t.add_object(ObjectKind::Register, ServerId::new(0));
        let mut sim = Simulation::new(t, SimConfig::unchecked());
        let c = sim.register_client(Box::new(DriverHarness {
            driver: BankMaxDriver::new(ServerId::new(0), vec![obj], None),
        }));
        let _ = sim.invoke(c, HighOp::Write(1));
    }

    #[test]
    fn flavours_and_objects_are_reported() {
        let native = NativeMaxDriver::new(ServerId::new(0), ObjectId::new(0));
        let cas = CasMaxDriver::new(ServerId::new(1), ObjectId::new(1));
        let bank = BankMaxDriver::new(
            ServerId::new(2),
            vec![ObjectId::new(2), ObjectId::new(3)],
            Some(0),
        );
        assert_eq!(native.flavour(), "native-max");
        assert_eq!(cas.flavour(), "cas-max");
        assert_eq!(bank.flavour(), "register-bank-max");
        assert_eq!(native.objects(), vec![ObjectId::new(0)]);
        assert_eq!(bank.objects().len(), 2);
        assert_eq!(cas.server(), ServerId::new(1));
    }
}
