//! Merge determinism of sharded fuzz campaigns.
//!
//! The fuzz-campaign contract: the merged, deduplicated failure set (and the
//! whole campaign report) is **byte-identical** for *any* partition of the
//! stream space into contiguous shards, run in *any* completion order —
//! and a killed campaign resumes from the manifest, reusing completed
//! `(shard, generation)` units instead of re-running them.

use regemu::fuzz::campaign::{
    fuzz_config_fingerprint, fuzz_shard_report_path, init_fuzz_spool, run_fuzz_shard_gen,
    FuzzManifest,
};
use regemu::prelude::*;
use regemu::{core::FaultyKind, workloads::campaign::WorkerMode};
use std::fs;
use std::path::PathBuf;

fn spool_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "regemu-fuzz-campaign-merge-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A small campaign over a seeded liveness bug, so the merged failure set is
/// non-trivial (stuck failures from several streams dedup into it).
fn faulty_config() -> FuzzCampaignConfig {
    FuzzCampaignConfig::new(
        FuzzConfig::new(Params::new(1, 1, 3).unwrap())
            .emulation(FuzzEmulation::Faulty(FaultyKind::DroppedAcks))
            .budget(28),
    )
    .streams(7)
    .generations(2)
}

/// Deterministic "shuffles" of the unit execution order: identity, reversed,
/// and an interleave — enough to prove completion order cannot leak into the
/// merge. Units are `(shard, generation)` pairs ordered generation-major
/// (the corpus-exchange barrier: generation g publishes before g+1 ingests).
fn unit_orders(shards: usize, generations: usize) -> Vec<Vec<(usize, usize)>> {
    let mut per_gen: Vec<Vec<(usize, usize)>> = Vec::new();
    for gen in 0..generations {
        per_gen.push((0..shards).map(|s| (s, gen)).collect());
    }
    let identity: Vec<(usize, usize)> = per_gen.iter().flatten().copied().collect();
    let reversed: Vec<(usize, usize)> = per_gen
        .iter()
        .flat_map(|units| units.iter().rev().copied())
        .collect();
    let interleaved: Vec<(usize, usize)> = per_gen
        .iter()
        .flat_map(|units| {
            units
                .iter()
                .filter(|(s, _)| s % 2 == 1)
                .chain(units.iter().filter(|(s, _)| s % 2 == 0))
                .copied()
        })
        .collect();
    vec![identity, reversed, interleaved]
}

#[test]
fn any_partition_in_any_order_merges_byte_identically() {
    let config = faulty_config();

    // The 1-shard run is the reference artifact.
    let reference = {
        let dir = spool_dir("reference");
        let manifest = init_fuzz_spool(&dir, &config, 1).unwrap();
        assert_eq!(manifest.fingerprint, fuzz_config_fingerprint(&config));
        for gen in 0..config.generations {
            run_fuzz_shard_gen(&dir, 0, gen).unwrap();
        }
        let report = merge_fuzz_campaign(&dir).unwrap();
        assert!(report.found(), "the seeded liveness bug must be caught");
        let artifact = (report.to_text(), report.failures_text());
        let _ = fs::remove_dir_all(&dir);
        artifact
    };

    for shards in [2, 7] {
        let shard_count = shards.min(config.streams);
        for (variant, order) in unit_orders(shard_count, config.generations)
            .into_iter()
            .enumerate()
        {
            let dir = spool_dir(&format!("partition-{shards}-{variant}"));
            let manifest = init_fuzz_spool(&dir, &config, shards).unwrap();
            assert_eq!(manifest.shards.len(), shard_count);
            for (shard, gen) in order {
                run_fuzz_shard_gen(&dir, shard, gen).unwrap();
            }
            let merged = merge_fuzz_campaign(&dir).unwrap();
            assert_eq!(
                merged.to_text(),
                reference.0,
                "report differs at {shards} shards (order variant {variant})"
            );
            assert_eq!(
                merged.failures_text(),
                reference.1,
                "failure artifact differs at {shards} shards (order variant {variant})"
            );
            let _ = fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn fuzz_workers_can_run_concurrently_within_a_generation() {
    // Units of the same generation racing on the same spool (threads here;
    // the CI smoke job covers real processes) still merge byte-identically:
    // each unit only writes its own streams' files.
    let config = faulty_config();
    let dir = spool_dir("concurrent");
    let manifest = init_fuzz_spool(&dir, &config, 4).unwrap();
    assert_eq!(manifest.shards.len(), 4);
    for gen in 0..config.generations {
        std::thread::scope(|scope| {
            for shard in 0..4 {
                let dir = dir.clone();
                scope.spawn(move || run_fuzz_shard_gen(&dir, shard, gen).unwrap());
            }
        });
    }
    let merged = merge_fuzz_campaign(&dir).unwrap();
    assert!(merged.found());

    // Against the 1-shard reference.
    let reference_dir = spool_dir("concurrent-reference");
    init_fuzz_spool(&reference_dir, &config, 1).unwrap();
    for gen in 0..config.generations {
        run_fuzz_shard_gen(&reference_dir, 0, gen).unwrap();
    }
    let reference = merge_fuzz_campaign(&reference_dir).unwrap();
    assert_eq!(merged.to_text(), reference.to_text());
    assert_eq!(merged.failures_text(), reference.failures_text());
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&reference_dir);
}

#[test]
fn resume_after_kill_reuses_completed_units() {
    let config = faulty_config();

    // The uninterrupted run is the reference.
    let reference = {
        let dir = spool_dir("resume-reference");
        let options = FuzzCampaignOptions {
            shards: 4,
            quiet: true,
            ..FuzzCampaignOptions::new(&dir)
        };
        let outcome = run_fuzz_campaign(&config, &options).unwrap();
        let report = outcome.report.expect("uninterrupted campaign completes");
        let artifact = (report.to_text(), report.failures_text());
        let _ = fs::remove_dir_all(&dir);
        artifact
    };

    let dir = spool_dir("resume");
    let mut options = FuzzCampaignOptions {
        shards: 4,
        worker: WorkerMode::InProcess,
        quiet: true,
        ..FuzzCampaignOptions::new(&dir)
    };

    // "Kill" the campaign after three of the eight units.
    options.exit_after = Some(3);
    let first = run_fuzz_campaign(&config, &options).unwrap();
    assert!(first.report.is_none());
    assert_eq!(first.units_run, 3);
    let manifest = FuzzManifest::load(&dir).unwrap().unwrap();
    assert!(!manifest.is_complete());
    let mtime = |shard: usize, gen: usize| {
        fs::metadata(fuzz_shard_report_path(&dir, shard, gen))
            .unwrap()
            .modified()
            .unwrap()
    };
    let before = (mtime(0, 0), mtime(1, 0), mtime(2, 0));

    // Resume: completed units are revalidated and reused untouched; the
    // merged artifacts equal the uninterrupted run byte for byte.
    options.exit_after = None;
    let second = run_fuzz_campaign(&config, &options).unwrap();
    assert_eq!(second.units_reused, 3);
    assert_eq!(second.units_run, 5);
    assert_eq!(
        (mtime(0, 0), mtime(1, 0), mtime(2, 0)),
        before,
        "completed units were rewritten"
    );
    let report = second.report.expect("resumed campaign completes");
    assert_eq!(report.to_text(), reference.0);
    assert_eq!(report.failures_text(), reference.1);
    let _ = fs::remove_dir_all(&dir);
}
