//! Property suite for the empirical space-complexity frontier
//! (`regemu::frontier`): measured peak usage of every *clean* construction
//! stays within the paper's upper bounds across the whole
//! `(k, f, n) × scheduler × crash-plan × seed` grid, adversarial covering
//! schedules provably build more coverage pressure than fair ones, the
//! rendered frontier table is pinned to a golden file, and sharded /
//! interrupted campaigns merge to the byte-identical table.
//!
//! Regenerate the golden table with
//! `REGEMU_REGEN_GOLDEN=1 cargo test --test frontier_bounds` after an
//! *intentional* semantic change (and say so in the PR).

use regemu::campaign::{CampaignOptions, WorkerMode};
use regemu::frontier::{run_frontier, run_frontier_campaign, FrontierConfig};
use regemu::prelude::*;
use regemu_bounds::BoundClass;
use std::fs;
use std::path::PathBuf;

const GOLDEN_PATH: &str = "tests/golden/frontier_table.txt";

/// The property grid: every feasible point with `k ∈ 1..=8`, `f ∈ 1..=3`,
/// `n ∈ 2f+1..=2f+5` (120 points).
fn property_grid() -> Vec<Params> {
    let mut grid = Vec::new();
    for f in 1..=3usize {
        for n in (2 * f + 1)..=(2 * f + 5) {
            for k in 1..=8usize {
                grid.push(Params::new(k, f, n).unwrap());
            }
        }
    }
    grid
}

/// Tentpole property: across the full grid, under **all** schedulers ×
/// **all** crash plans × 3 seeds, every clean construction's measured peak
/// register usage respects its Table 1 upper bound — and the max-register /
/// CAS constructions never exceed `2f + 1`.
#[test]
fn clean_constructions_stay_within_their_upper_bounds_across_the_grid() {
    let mut config = FrontierConfig::over_grid(property_grid());
    config.workloads = vec![WorkloadSpec::WriteSequential {
        rounds: 1,
        read_after_each: true,
    }];
    config.schedulers = SchedulerSpec::ALL.to_vec();
    config.crash_plans = CrashPlanSpec::ALL.to_vec();
    config.seeds = vec![1, 2, 3];
    assert_eq!(config.grid.len(), 120);

    let report = run_frontier(&config).unwrap();
    assert_eq!(report.len(), 120 * EmulationKind::ALL.len());
    assert!(
        report.all_within_upper(),
        "a clean construction exceeded its upper bound: {:?}",
        report.violations().next()
    );
    for row in report.rows() {
        assert_eq!(
            row.cases,
            SchedulerSpec::ALL.len() * CrashPlanSpec::ALL.len() * 3,
            "row must aggregate the full scheduler × crash-plan × seed cross"
        );
        assert_eq!(row.errors, 0, "{:?}", row);
        assert_eq!(row.inconsistent, 0, "{:?}", row);
        assert!(row.peak_used <= row.provisioned, "{:?}", row);
        // Table 1 separation rows: 2f + 1 max-registers / CAS objects
        // suffice regardless of k.
        if matches!(row.verdict.class, BoundClass::MaxRegister | BoundClass::Cas) {
            assert!(
                row.peak_used <= 2 * row.params.f + 1,
                "rmw construction used {} > 2f+1 at {:?}",
                row.peak_used,
                row.params
            );
        }
        // The lower-bound column never crosses the upper-bound column.
        assert!(row.verdict.lower <= row.verdict.upper, "{:?}", row);
    }
}

/// Adversarial pressure: on every `(f, n)` row there is a grid point where
/// the covering adversary (`CoverWrites` on `f` servers, the executable
/// `Ad_i` schedule) drives the space-optimal construction's peak
/// `|Cov(t)|` strictly above the fair-schedule peak.
#[test]
fn adversarial_coverage_pressure_exceeds_the_fair_peak_on_every_row() {
    for f in 1..=3usize {
        for n in (2 * f + 1)..=(2 * f + 3) {
            let grid: Vec<Params> = (1..=8usize)
                .map(|k| Params::new(k, f, n).unwrap())
                .collect();
            let mut config = FrontierConfig::over_grid(grid);
            config.emulations = vec![EmulationKind::SpaceOptimal];
            config.workloads = vec![WorkloadSpec::WriteSequential {
                rounds: 2,
                read_after_each: true,
            }];
            config.schedulers = vec![SchedulerSpec::Fair, SchedulerSpec::CoverAdversary];
            config.crash_plans = vec![CrashPlanSpec::None];
            config.seeds = vec![1, 2, 3];

            let report = run_frontier(&config).unwrap();
            let separated = report
                .rows()
                .iter()
                .any(|row| row.adversary_peak_covered.unwrap() > row.fair_peak_covered.unwrap());
            assert!(
                separated,
                "no k in 1..=8 separates adversary from fair coverage at f={f}, n={n}: {:?}",
                report
                    .rows()
                    .iter()
                    .map(|r| (r.params.k, r.fair_peak_covered, r.adversary_peak_covered))
                    .collect::<Vec<_>>()
            );
        }
    }
}

/// The seeded-bug constructions ([`FaultyKind`]) are *exempt* from the
/// clean-bound property — they cannot enter a frontier config at all — and
/// are asserted separately: they provision the same base-object budget as
/// their clean counterparts (the seeded fault is protocol-level, not
/// space-level), yet violate the paper's guarantees under fuzzing, which is
/// exactly why the frontier property quantifies over clean kinds only.
#[test]
fn faulty_constructions_are_exempt_and_asserted_separately() {
    let params = Params::new(2, 1, 4).unwrap();
    for kind in FaultyKind::ALL {
        // Type-level exemption: faulty names are not EmulationKind names,
        // so no FrontierConfig (whose emulation axis is EmulationKind) can
        // sweep them.
        assert!(
            EmulationKind::from_name(kind.name()).is_none(),
            "{} must not resolve to a frontier emulation",
            kind.name()
        );
        assert!(!EmulationKind::ALL.iter().any(|e| e.name() == kind.name()));

        // Space parity with the clean counterpart: the fault never changes
        // what is provisioned, only how the protocol uses it.
        let counterpart = match kind {
            FaultyKind::WeakQuorumWrite => EmulationKind::SpaceOptimal,
            FaultyKind::SkippedUpdateRound | FaultyKind::DroppedAcks => {
                EmulationKind::AbdMaxRegister
            }
        };
        assert_eq!(
            kind.build(params).base_object_count(),
            counterpart.build(params).base_object_count(),
            "{} provisions a different budget than {}",
            kind.name(),
            counterpart.name()
        );
    }

    // Behavioural exemption: the weakened-quorum variant of Algorithm 2
    // still runs and measures, but is not a correct f-tolerant emulation —
    // the fuzzer finds a violating schedule, so its measurements cannot be
    // judged against the clean-construction bounds.
    let config = FuzzConfig::new(Params::new(1, 1, 3).unwrap())
        .emulation(FuzzEmulation::Faulty(FaultyKind::WeakQuorumWrite))
        .seed(61525)
        .budget(200)
        .stop_on_failure();
    let report = Fuzzer::new(config).run();
    assert!(
        report.found(),
        "the seeded weak-quorum bug must be catchable — otherwise exempting \
         faulty kinds from the bound property would be vacuous"
    );
}

/// The rendered quick-grid frontier table is pinned to a golden file
/// (regenerate with `REGEMU_REGEN_GOLDEN=1`).
#[test]
fn frontier_table_matches_the_recorded_golden_file() {
    let config = FrontierConfig::quick();
    let report = run_frontier(&config).unwrap();
    let table = report.to_text();
    if std::env::var_os("REGEMU_REGEN_GOLDEN").is_some() {
        fs::create_dir_all("tests/golden").expect("create golden dir");
        fs::write(GOLDEN_PATH, &table).expect("write golden frontier table");
        return;
    }
    let golden = fs::read_to_string(GOLDEN_PATH).expect(
        "golden frontier table missing; regenerate with \
         REGEMU_REGEN_GOLDEN=1 cargo test --test frontier_bounds",
    );
    assert!(
        table == golden,
        "frontier table diverged from the recorded golden file\n\
         (first difference at byte {})\n--- rendered ---\n{table}",
        table
            .bytes()
            .zip(golden.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| table.len().min(golden.len())),
    );
}

fn spool_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("regemu-frontier-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Sharding and interruption transparency: a frontier campaign run as 1
/// shard, as 4 shards, and as 4 shards killed after one shard then resumed
/// all produce text/JSON/CSV byte-identical to the single-process
/// `run_frontier`.
#[test]
fn sharded_and_killed_campaigns_merge_to_the_byte_identical_table() {
    let mut config = FrontierConfig::quick();
    config.grid.truncate(4);
    config.seeds = vec![1];
    config.threads = 1;

    let single = run_frontier(&config).unwrap();

    for shards in [1usize, 4] {
        let dir = spool_dir(&format!("shards-{shards}"));
        let mut options = CampaignOptions::new(&dir);
        options.shards = shards;
        options.worker_threads = 1;
        options.worker = WorkerMode::InProcess;
        options.quiet = true;
        let report = run_frontier_campaign(&config, &options)
            .unwrap()
            .expect("campaign completed");
        assert_eq!(report.to_text(), single.to_text(), "{shards} shards");
        assert_eq!(report.to_json(), single.to_json(), "{shards} shards");
        assert_eq!(report.to_csv(), single.to_csv(), "{shards} shards");
        let _ = fs::remove_dir_all(&dir);
    }

    // Kill after one shard, then resume from the same spool.
    let dir = spool_dir("resume");
    let mut options = CampaignOptions::new(&dir);
    options.shards = 4;
    options.worker_threads = 1;
    options.worker = WorkerMode::InProcess;
    options.quiet = true;
    options.exit_after = Some(1);
    let paused = run_frontier_campaign(&config, &options).unwrap();
    assert!(paused.is_none(), "exit-after must pause, not complete");
    options.exit_after = None;
    let resumed = run_frontier_campaign(&config, &options)
        .unwrap()
        .expect("campaign completed after resume");
    assert_eq!(resumed.to_text(), single.to_text());
    assert_eq!(resumed.to_json(), single.to_json());
    let _ = fs::remove_dir_all(&dir);
}
