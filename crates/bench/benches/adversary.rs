//! Criterion bench: cost of the `Ad_i` lower-bound campaign (Lemma 1) as a
//! function of the number of writers — the harness itself must scale so the
//! Figure 2 / Theorem 6 / Theorem 8 experiments stay cheap to regenerate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use regemu_adversary::LowerBoundCampaign;
use regemu_bounds::Params;
use regemu_core::SpaceOptimalEmulation;

fn bench_campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("adversary/lemma1_campaign");
    group.sample_size(10);
    for k in [2usize, 4, 8] {
        let params = Params::new(k, 1, 4).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(k), &params, |b, &params| {
            b.iter(|| {
                let emulation = SpaceOptimalEmulation::new(params);
                let report = LowerBoundCampaign::new(&emulation).run(&emulation).unwrap();
                assert!(report.satisfies_coverage_growth());
            });
        });
    }
    group.finish();
}

fn bench_single_adversarial_write(c: &mut Criterion) {
    let mut group = c.benchmark_group("adversary/single_iteration");
    group.sample_size(20);
    for (k, f, n) in [(2usize, 1usize, 3usize), (4, 2, 8)] {
        let params = Params::new(k, f, n).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("k{k}_f{f}_n{n}")),
            &params,
            |b, &params| {
                b.iter(|| {
                    let emulation = SpaceOptimalEmulation::new(params);
                    let campaign = LowerBoundCampaign::new(&emulation).with_writes(1);
                    let report = campaign.run(&emulation).unwrap();
                    assert_eq!(report.iterations.len(), 1);
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_campaign, bench_single_adversarial_write);
criterion_main!(benches);
