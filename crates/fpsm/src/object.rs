//! Base objects: atomic read/write registers, max-registers and CAS objects.
//!
//! Base objects are *atomic* ([Herlihy & Wing]); following Assumption 1 of the
//! paper (Write Linearization) the simulation applies an operation to the
//! object state exactly at the step where the operation *responds*, which is a
//! legal linearization point. A low-level write that has been triggered but
//! has not yet responded is *pending* and **covers** the object: it may take
//! effect at any later time and erase whatever was stored in between.
//!
//! [Herlihy & Wing]: https://doi.org/10.1145/78969.78972

use crate::ids::{ObjectId, ServerId};
use crate::op::{BaseOp, BaseResponse};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The type of primitive a base object supports (first column of Table 1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum ObjectKind {
    /// A multi-writer/multi-reader read/write register.
    Register,
    /// A max-register: `write-max(v)` / `read-max()` over an ordered domain.
    MaxRegister,
    /// A compare-and-swap object returning the previous value.
    Cas,
}

impl ObjectKind {
    /// Returns `true` if `op` is part of this object kind's interface.
    pub fn supports(&self, op: &BaseOp) -> bool {
        matches!(
            (self, op),
            (ObjectKind::Register, BaseOp::Read)
                | (ObjectKind::Register, BaseOp::Write(_))
                | (ObjectKind::MaxRegister, BaseOp::ReadMax)
                | (ObjectKind::MaxRegister, BaseOp::WriteMax(_))
                | (ObjectKind::Cas, BaseOp::Cas { .. })
        )
    }

    /// All object kinds, in the order of Table 1.
    pub const ALL: [ObjectKind; 3] = [
        ObjectKind::MaxRegister,
        ObjectKind::Cas,
        ObjectKind::Register,
    ];
}

impl fmt::Display for ObjectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectKind::Register => write!(f, "read/write register"),
            ObjectKind::MaxRegister => write!(f, "max-register"),
            ObjectKind::Cas => write!(f, "CAS"),
        }
    }
}

/// Errors raised when applying a low-level operation to a base object.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ObjectError {
    /// The operation does not belong to the object's interface
    /// (e.g. `write-max` on a plain register).
    UnsupportedOp {
        /// Kind of the object the operation was applied to.
        kind: ObjectKind,
        /// The offending operation.
        op: BaseOp,
    },
    /// The object has crashed (its hosting server crashed) and can no longer
    /// respond to operations.
    Crashed(ObjectId),
}

impl fmt::Display for ObjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectError::UnsupportedOp { kind, op } => {
                write!(f, "operation {op} is not supported by a {kind}")
            }
            ObjectError::Crashed(id) => write!(f, "base object {id} has crashed"),
        }
    }
}

impl std::error::Error for ObjectError {}

/// The state of a single base object hosted on a server.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BaseObject {
    id: ObjectId,
    server: ServerId,
    kind: ObjectKind,
    value: Value,
    crashed: bool,
    applied_writes: u64,
    applied_reads: u64,
}

impl BaseObject {
    /// Creates a fresh base object holding the initial value `v0`.
    pub fn new(id: ObjectId, server: ServerId, kind: ObjectKind) -> Self {
        BaseObject {
            id,
            server,
            kind,
            value: Value::INITIAL,
            crashed: false,
            applied_writes: 0,
            applied_reads: 0,
        }
    }

    /// The object's identifier.
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// The server this object is mapped to by `δ`.
    pub fn server(&self) -> ServerId {
        self.server
    }

    /// The primitive type this object supports.
    pub fn kind(&self) -> ObjectKind {
        self.kind
    }

    /// The value currently stored (meaningful only for introspection/tests;
    /// protocols must go through operations).
    pub fn value(&self) -> Value {
        self.value
    }

    /// Whether the object has crashed.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Number of write-class operations that have taken effect.
    pub fn applied_writes(&self) -> u64 {
        self.applied_writes
    }

    /// Number of read-class operations that have taken effect.
    pub fn applied_reads(&self) -> u64 {
        self.applied_reads
    }

    /// Marks the object as crashed (invoked when its server crashes).
    pub fn crash(&mut self) {
        self.crashed = true;
    }

    /// Applies `op` atomically and returns the matching response.
    ///
    /// This is the linearization point of the operation (Assumption 1: a
    /// low-level write linearizes at its respond step).
    ///
    /// # Errors
    ///
    /// Returns [`ObjectError::Crashed`] if the object has crashed and
    /// [`ObjectError::UnsupportedOp`] if `op` is not part of the object's
    /// interface.
    pub fn apply(&mut self, op: &BaseOp) -> Result<BaseResponse, ObjectError> {
        if self.crashed {
            return Err(ObjectError::Crashed(self.id));
        }
        if !self.kind.supports(op) {
            return Err(ObjectError::UnsupportedOp {
                kind: self.kind,
                op: *op,
            });
        }
        let resp = match op {
            BaseOp::Read => {
                self.applied_reads += 1;
                BaseResponse::ReadValue(self.value)
            }
            BaseOp::Write(v) => {
                self.applied_writes += 1;
                self.value = *v;
                BaseResponse::WriteAck
            }
            BaseOp::ReadMax => {
                self.applied_reads += 1;
                BaseResponse::MaxValue(self.value)
            }
            BaseOp::WriteMax(v) => {
                self.applied_writes += 1;
                self.value = self.value.max(*v);
                BaseResponse::WriteMaxAck
            }
            BaseOp::Cas { expected, new } => {
                self.applied_writes += 1;
                let prev = self.value;
                if prev == *expected {
                    self.value = *new;
                }
                BaseResponse::CasOld(prev)
            }
        };
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(kind: ObjectKind) -> BaseObject {
        BaseObject::new(ObjectId::new(0), ServerId::new(0), kind)
    }

    #[test]
    fn register_read_write_semantics() {
        let mut r = obj(ObjectKind::Register);
        assert_eq!(
            r.apply(&BaseOp::Read).unwrap(),
            BaseResponse::ReadValue(Value::INITIAL)
        );
        let v = Value::new(3, 7);
        assert_eq!(r.apply(&BaseOp::Write(v)).unwrap(), BaseResponse::WriteAck);
        assert_eq!(r.apply(&BaseOp::Read).unwrap(), BaseResponse::ReadValue(v));
        // A register is *not* a max-register: an older write overwrites.
        let older = Value::new(1, 1);
        r.apply(&BaseOp::Write(older)).unwrap();
        assert_eq!(
            r.apply(&BaseOp::Read).unwrap(),
            BaseResponse::ReadValue(older)
        );
        assert_eq!(r.applied_writes(), 2);
        assert_eq!(r.applied_reads(), 3);
    }

    #[test]
    fn max_register_keeps_maximum() {
        let mut m = obj(ObjectKind::MaxRegister);
        m.apply(&BaseOp::WriteMax(Value::new(5, 1))).unwrap();
        m.apply(&BaseOp::WriteMax(Value::new(2, 9))).unwrap();
        assert_eq!(
            m.apply(&BaseOp::ReadMax).unwrap(),
            BaseResponse::MaxValue(Value::new(5, 1))
        );
        m.apply(&BaseOp::WriteMax(Value::new(5, 2))).unwrap();
        assert_eq!(
            m.apply(&BaseOp::ReadMax).unwrap(),
            BaseResponse::MaxValue(Value::new(5, 2))
        );
    }

    #[test]
    fn cas_swaps_only_on_match_and_returns_old() {
        let mut c = obj(ObjectKind::Cas);
        let v1 = Value::new(1, 1);
        let v2 = Value::new(2, 2);
        // Failed CAS: expected doesn't match.
        assert_eq!(
            c.apply(&BaseOp::Cas {
                expected: v1,
                new: v2
            })
            .unwrap(),
            BaseResponse::CasOld(Value::INITIAL)
        );
        assert_eq!(c.value(), Value::INITIAL);
        // Successful CAS.
        assert_eq!(
            c.apply(&BaseOp::Cas {
                expected: Value::INITIAL,
                new: v1
            })
            .unwrap(),
            BaseResponse::CasOld(Value::INITIAL)
        );
        assert_eq!(c.value(), v1);
        // Read-only CAS(v0, v0) idiom from Algorithm 1 returns current value.
        assert_eq!(
            c.apply(&BaseOp::Cas {
                expected: Value::INITIAL,
                new: Value::INITIAL
            })
            .unwrap(),
            BaseResponse::CasOld(v1)
        );
        assert_eq!(c.value(), v1);
    }

    #[test]
    fn interface_mismatch_is_rejected() {
        let mut r = obj(ObjectKind::Register);
        let err = r.apply(&BaseOp::ReadMax).unwrap_err();
        assert!(matches!(err, ObjectError::UnsupportedOp { .. }));
        let mut m = obj(ObjectKind::MaxRegister);
        assert!(m.apply(&BaseOp::Read).is_err());
        let mut c = obj(ObjectKind::Cas);
        assert!(c.apply(&BaseOp::Write(Value::INITIAL)).is_err());
    }

    #[test]
    fn crashed_objects_reject_everything() {
        let mut r = obj(ObjectKind::Register);
        r.crash();
        assert!(r.is_crashed());
        assert_eq!(
            r.apply(&BaseOp::Read).unwrap_err(),
            ObjectError::Crashed(ObjectId::new(0))
        );
    }

    #[test]
    fn kind_supports_table() {
        use BaseOp::*;
        let w = Write(Value::INITIAL);
        let wm = WriteMax(Value::INITIAL);
        let cas = Cas {
            expected: Value::INITIAL,
            new: Value::INITIAL,
        };
        assert!(ObjectKind::Register.supports(&Read));
        assert!(ObjectKind::Register.supports(&w));
        assert!(!ObjectKind::Register.supports(&ReadMax));
        assert!(ObjectKind::MaxRegister.supports(&ReadMax));
        assert!(ObjectKind::MaxRegister.supports(&wm));
        assert!(!ObjectKind::MaxRegister.supports(&cas));
        assert!(ObjectKind::Cas.supports(&cas));
        assert!(!ObjectKind::Cas.supports(&Read));
    }

    #[test]
    fn display_names() {
        assert_eq!(ObjectKind::Register.to_string(), "read/write register");
        assert_eq!(ObjectKind::MaxRegister.to_string(), "max-register");
        assert_eq!(ObjectKind::Cas.to_string(), "CAS");
    }
}
