//! Ablation study: why Algorithm 2's quorum sizes cannot be reduced.
//!
//! The construction's write quorum has size `|R_j| - f` and its read quorum
//! spans all registers on `n - f` servers. Both sizes are exactly what the
//! lower-bound adversary forces: a writer that returns after fewer
//! acknowledgements can have *all* of its effective writes sit on servers
//! that subsequently crash (or whose responses are delayed forever), making a
//! later read miss the value — a WS-Safety violation even though no more than
//! `f` servers ever fail.
//!
//! [`demonstrate_quorum_ablation`] builds that schedule explicitly: it runs
//! one writer with a configurable *quorum slack* (how many acknowledgements
//! short of `|R_j| - f` the write is allowed to return), delays the remaining
//! low-level writes, crashes the `f` servers that did acknowledge, and then
//! lets a reader run. With slack 0 (the paper's algorithm) the read always
//! returns the written value; with any positive slack the read can return the
//! stale initial value.

use regemu_bounds::Params;
use regemu_core::layout::RegisterLayout;
use regemu_core::upper_bound::{SharedLayout, SpaceOptimalClient};
use regemu_fpsm::{HighOp, OpId, ServerId, SimConfig, SimError, Simulation};
use regemu_spec::{check_ws_safe, HighHistory, SequentialSpec};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Outcome of one ablation schedule.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AblationOutcome {
    /// The quorum slack the writer was configured with (0 = Algorithm 2).
    pub slack: usize,
    /// Value the writer wrote.
    pub written: u64,
    /// Value the reader observed after the crashes.
    pub read: u64,
    /// Number of servers crashed (always ≤ f).
    pub crashed_servers: usize,
    /// Whether the resulting schedule violates WS-Safety.
    pub violates_ws_safety: bool,
}

/// Runs the ablation schedule for `params` with the given writer quorum
/// slack and returns what the reader observed.
///
/// The schedule only uses behaviours the model allows: responses may be
/// delayed indefinitely and at most `f` servers crash.
///
/// # Errors
///
/// Propagates [`SimError`] if the writer or reader fails to complete within
/// the step budget (which would indicate a liveness bug rather than the
/// safety issue this ablation is about).
pub fn demonstrate_quorum_ablation(
    params: Params,
    slack: usize,
) -> Result<AblationOutcome, SimError> {
    let (topology, layout) = RegisterLayout::build(params);
    let shared = SharedLayout::new(layout, &topology);
    let mut sim = Simulation::new(topology, SimConfig::with_fault_threshold(params.f));

    let writer = sim.register_client(Box::new(SpaceOptimalClient::writer_with_quorum_slack(
        shared.clone(),
        0,
        slack,
    )));
    let reader = sim.register_client(Box::new(SpaceOptimalClient::reader(shared.clone())));

    let written = 4242u64;
    let write = sim.invoke(writer, HighOp::Write(written))?;

    // Phase 1: deliver the writer's collect reads so the low-level writes get
    // triggered, then deliver write acknowledgements one by one until the
    // write returns — always preferring the acknowledgement from the
    // lowest-numbered server, so the acknowledged registers are concentrated
    // on the servers we are about to crash.
    let mut acked_servers: BTreeSet<ServerId> = BTreeSet::new();
    let mut steps = 0u64;
    while sim.result_of(write).is_none() {
        let next_read: Option<OpId> = sim
            .deliverable_ops()
            .filter(|p| p.client == writer && p.op.is_read())
            .map(|p| p.op_id)
            .min();
        if let Some(op) = next_read {
            sim.deliver(op)?;
        } else {
            // Deliver the pending write on the lowest-numbered server.
            let Some(op) = sim
                .deliverable_ops()
                .filter(|p| p.client == writer && p.op.is_write())
                .min_by_key(|p| (p.server, p.op_id))
                .map(|p| p.op_id)
            else {
                return Err(SimError::Stuck {
                    steps,
                    waiting_for: "the ablated write to return".to_string(),
                });
            };
            let server = sim.pending_op(op).expect("still pending").server;
            sim.deliver(op)?;
            acked_servers.insert(server);
        }
        steps += 1;
        if steps > 1_000_000 {
            return Err(SimError::Stuck {
                steps,
                waiting_for: "ablation phase 1".to_string(),
            });
        }
    }

    // Phase 2: crash up to f of the servers whose registers acknowledged the
    // write. With slack 0 at least one acknowledged register survives outside
    // the crash set; with positive slack all effective writes can disappear.
    let to_crash: Vec<ServerId> = acked_servers.iter().copied().take(params.f).collect();
    for server in &to_crash {
        sim.crash_server(*server)?;
    }

    // Phase 3: the reader runs; only its own operations are delivered (the
    // writer's leftover low-level writes stay delayed, as the model allows).
    let read = sim.invoke(reader, HighOp::Read)?;
    let mut steps = 0u64;
    while sim.result_of(read).is_none() {
        let Some(op) = sim
            .deliverable_ops()
            .filter(|p| p.client == reader)
            .map(|p| p.op_id)
            .min()
        else {
            return Err(SimError::Stuck {
                steps,
                waiting_for: "the read to return".to_string(),
            });
        };
        sim.deliver(op)?;
        steps += 1;
        if steps > 1_000_000 {
            return Err(SimError::Stuck {
                steps,
                waiting_for: "ablation phase 3".to_string(),
            });
        }
    }
    let read_value = sim.result_of(read).and_then(|r| r.payload()).unwrap_or(0);

    let history = HighHistory::from_run(sim.history());
    let violates = check_ws_safe(&history, &SequentialSpec::register()).is_err();
    Ok(AblationOutcome {
        slack,
        written,
        read: read_value,
        crashed_servers: to_crash.len(),
        violates_ws_safety: violates,
    })
}

/// Identifiers used by the layout-size ablation below.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayoutAblation {
    /// The paper's layout (`y = zf + f + 1` registers per full set).
    PaperSized,
    /// A set shrunk by one register: the write quorum `|R| - f` and the at
    /// most `f` registers covered by *each* of the set's `z` writers no
    /// longer leave a guaranteed uncovered, acknowledged register inside
    /// every read quorum.
    OneRegisterSmaller,
}

/// Computes, for a full register set of the given size, the worst-case number
/// of acknowledged-and-visible registers a read quorum is guaranteed to
/// contain after a write completes:
/// `|R| - f (acks) - f (servers outside the read quorum) - (z-1)·f (covered by
/// the other writers of the set)`. The paper's `y` makes this exactly 1; one
/// register fewer makes it 0 — the value can vanish.
pub fn guaranteed_visible_registers(params: Params, ablation: LayoutAblation) -> isize {
    let z = params.z() as isize;
    let f = params.f as isize;
    let size = match ablation {
        LayoutAblation::PaperSized => z * f + f + 1,
        LayoutAblation::OneRegisterSmaller => z * f + f,
    };
    size - f - f - (z - 1) * f
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(k: usize, f: usize, n: usize) -> Params {
        Params::new(k, f, n).unwrap()
    }

    #[test]
    fn paper_quorum_survives_the_crash_schedule() {
        for (k, f, n) in [(1usize, 1usize, 3usize), (2, 1, 4), (1, 2, 5)] {
            let outcome = demonstrate_quorum_ablation(params(k, f, n), 0).unwrap();
            assert_eq!(outcome.read, outcome.written, "k={k} f={f} n={n}");
            assert!(!outcome.violates_ws_safety);
            assert!(outcome.crashed_servers <= f);
        }
    }

    #[test]
    fn reduced_quorum_loses_the_write_at_minimal_n() {
        // With z = 1 (n = 2f + 1) the visibility margin is a single register,
        // so waiting for one acknowledgement fewer than |R_j| - f already
        // lets the value disappear behind f crashes plus delayed responses.
        for (k, f, n) in [(1usize, 1usize, 3usize), (3, 1, 3), (1, 2, 5)] {
            let outcome = demonstrate_quorum_ablation(params(k, f, n), 1).unwrap();
            assert_ne!(outcome.read, outcome.written, "k={k} f={f} n={n}");
            assert!(outcome.violates_ws_safety, "k={k} f={f} n={n}");
            assert!(outcome.crashed_servers <= f);
        }
    }

    #[test]
    fn reduced_quorum_loses_the_write_once_the_margin_is_exhausted() {
        // For z > 1 a single write enjoys a margin of (z-1)·f + 1 surviving
        // acknowledgements (the margin the *other* writers of the set would
        // consume with their covering writes); skipping that many is what it
        // takes for a lone writer's value to vanish.
        for (k, f, n) in [(2usize, 1usize, 4usize), (3, 1, 5), (2, 2, 7)] {
            let p = params(k, f, n);
            let slack = (p.z() - 1) * p.f + 1;
            // One acknowledgement less than that margin is still safe…
            let safe = demonstrate_quorum_ablation(p, slack - 1).unwrap();
            assert_eq!(safe.read, safe.written, "k={k} f={f} n={n}");
            // …but skipping the full margin loses the write.
            let unsafe_outcome = demonstrate_quorum_ablation(p, slack).unwrap();
            assert_ne!(
                unsafe_outcome.read, unsafe_outcome.written,
                "k={k} f={f} n={n}"
            );
            assert!(unsafe_outcome.violates_ws_safety, "k={k} f={f} n={n}");
        }
    }

    #[test]
    fn guaranteed_visibility_margin_is_exactly_one_register() {
        for (k, f, n) in [(2usize, 1usize, 4usize), (4, 2, 9), (6, 3, 13)] {
            let p = params(k, f, n);
            assert_eq!(
                guaranteed_visible_registers(p, LayoutAblation::PaperSized),
                1
            );
            assert_eq!(
                guaranteed_visible_registers(p, LayoutAblation::OneRegisterSmaller),
                0
            );
        }
    }
}
