//! Reusable block/unblock scheduling strategies.
//!
//! The lower-bound adversary `Ad_i` works by *withholding responses*: a
//! pending low-level write whose response never arrives keeps its register
//! covered, which is what forces the space consumption to grow. This module
//! packages that proof device as [`regemu_fpsm::BlockStrategy`]
//! implementations, so the same adversarial behaviour that powers the Lemma 1
//! campaigns can drive ordinary experiment runs through an
//! [`regemu_fpsm::AdversarialScheduler`] — and therefore become a *sweepable
//! scheduler dimension* instead of a bespoke harness.
//!
//! Three strategies are provided:
//!
//! * [`SilenceServers`] — withholds **every** response from a chosen server
//!   set, the scheduling equivalent of those servers being crashed (but the
//!   operations stay pending and keep covering their registers);
//! * [`CoverWrites`] — withholds only **write-class** responses from the
//!   chosen servers, the exact move `Ad_i` makes in Definition 2: reads stay
//!   live, writes pile up as covering operations;
//! * [`ReplayStrategy`] — replays a recorded delivery-order decision stream
//!   (see [`regemu_fpsm::DecisionRecord`]), turning the scheduler into a
//!   deterministic re-execution engine for fuzzing and failure triage.
//!
//! The first two are safe to run against any `f`-tolerant emulation as long
//! as the chosen set has at most `f` servers: safety (WS-Regularity) holds
//! under *any* environment behaviour, and liveness only needs `n - f`
//! responsive servers.

use regemu_fpsm::{BlockStrategy, OpId, PendingOp, ServerId, Simulation, Time};
use std::collections::BTreeSet;

/// Withholds every response from a fixed server set.
///
/// Operations on the silenced servers stay pending forever (covering their
/// objects); everything else is scheduled fairly.
#[derive(Clone, Debug)]
pub struct SilenceServers {
    servers: BTreeSet<ServerId>,
}

impl SilenceServers {
    /// Silences exactly the given servers.
    pub fn new(servers: impl IntoIterator<Item = ServerId>) -> Self {
        SilenceServers {
            servers: servers.into_iter().collect(),
        }
    }

    /// Silences the `count` highest-numbered of `n` servers — the same set a
    /// crash-`f` plan targets, so combining both stays within one fault
    /// budget.
    pub fn highest(n: usize, count: usize) -> Self {
        Self::new((n.saturating_sub(count)..n).map(ServerId::new))
    }

    /// The silenced servers.
    pub fn servers(&self) -> &BTreeSet<ServerId> {
        &self.servers
    }
}

impl BlockStrategy for SilenceServers {
    fn blocks(&mut self, _sim: &Simulation, op: &PendingOp) -> bool {
        self.servers.contains(&op.server)
    }

    // Matches the `SchedulerSpec::SilenceAdversary` report name so runs
    // driven through `scenario::drive` group with Scenario-built runs.
    fn name(&self) -> &'static str {
        "adversary-silence"
    }
}

/// Withholds write-class responses from a fixed server set — the `Ad_i`
/// move: reads stay live, writes accumulate as covering operations.
#[derive(Clone, Debug)]
pub struct CoverWrites {
    servers: BTreeSet<ServerId>,
}

impl CoverWrites {
    /// Blocks write responses on exactly the given servers.
    pub fn new(servers: impl IntoIterator<Item = ServerId>) -> Self {
        CoverWrites {
            servers: servers.into_iter().collect(),
        }
    }

    /// Blocks write responses on the `count` highest-numbered of `n` servers.
    pub fn highest(n: usize, count: usize) -> Self {
        Self::new((n.saturating_sub(count)..n).map(ServerId::new))
    }

    /// The servers whose write responses are withheld.
    pub fn servers(&self) -> &BTreeSet<ServerId> {
        &self.servers
    }
}

impl BlockStrategy for CoverWrites {
    fn blocks(&mut self, _sim: &Simulation, op: &PendingOp) -> bool {
        op.op.is_write() && self.servers.contains(&op.server)
    }

    // Matches the `SchedulerSpec::CoverAdversary` report name so runs
    // driven through `scenario::drive` group with Scenario-built runs.
    fn name(&self) -> &'static str {
        "adversary-cover"
    }
}

/// Replays a recorded delivery-order decision stream.
///
/// Each decision is the *rank* of the operation to deliver among the
/// currently deliverable ones, in ascending op-id order — the encoding
/// produced by [`regemu_fpsm::Simulation::enable_decision_trace`]. At every
/// scheduler step the strategy consumes one decision, resolves it to a
/// concrete operation and blocks everything else, so the (otherwise seeded)
/// [`regemu_fpsm::AdversarialScheduler`] has exactly one candidate and the
/// step is fully determined. Once the stream is exhausted the strategy blocks
/// nothing and the scheduler's own seeded fairness takes over, which lets a
/// replayed *prefix* be extended by a deterministic tail.
///
/// Ranks are reduced modulo the candidate count, so any `u32` stream — in
/// particular a mutated one — is a valid schedule.
#[derive(Clone, Debug)]
pub struct ReplayStrategy {
    decisions: Vec<u32>,
    next: usize,
    /// The op chosen for the current scheduler step, keyed by the simulation
    /// time at which it was chosen. Time strictly increases between steps and
    /// is constant within one, so a stale entry can never be confused for the
    /// current step's choice.
    current: Option<(Time, OpId)>,
}

impl ReplayStrategy {
    /// Replays the given decision stream, then schedules fairly.
    pub fn new(decisions: Vec<u32>) -> Self {
        ReplayStrategy {
            decisions,
            next: 0,
            current: None,
        }
    }

    /// Number of decisions not yet consumed.
    pub fn remaining(&self) -> usize {
        self.decisions.len().saturating_sub(self.next)
    }
}

impl BlockStrategy for ReplayStrategy {
    fn blocks(&mut self, sim: &Simulation, op: &PendingOp) -> bool {
        let now = sim.time();
        let chosen = match self.current {
            Some((time, id)) if time == now => Some(id),
            _ => {
                if self.next >= self.decisions.len() {
                    return false;
                }
                let candidates = sim.deliverable_ops().count() as u32;
                if candidates == 0 {
                    return false;
                }
                let rank = self.decisions[self.next] % candidates;
                self.next += 1;
                let id = sim
                    .deliverable_ops()
                    .nth(rank as usize)
                    .map(|p| p.op_id)
                    .expect("rank is reduced modulo the candidate count");
                self.current = Some((now, id));
                Some(id)
            }
        };
        chosen != Some(op.op_id)
    }

    fn name(&self) -> &'static str {
        "replay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regemu_bounds::Params;
    use regemu_core::EmulationKind;
    use regemu_fpsm::{AdversarialScheduler, HighOp, Scheduler};

    fn run_under<S: BlockStrategy + 'static>(kind: EmulationKind, strategy: S) -> usize {
        let params = Params::new(2, 1, 4).unwrap();
        let emulation = kind.build(params);
        let mut sim = emulation.build_simulation();
        let writer = sim.register_client(emulation.writer_protocol(0));
        let reader = sim.register_client(emulation.reader_protocol());
        let mut sched = AdversarialScheduler::new(5, Box::new(strategy));
        let w = sim.invoke(writer, HighOp::Write(9)).unwrap();
        sched.run_until_complete(&mut sim, w, 50_000).unwrap();
        let r = sim.invoke(reader, HighOp::Read).unwrap();
        sched.run_until_complete(&mut sim, r, 50_000).unwrap();
        sched.run_until_quiescent(&mut sim, 50_000).unwrap();
        sim.pending_count()
    }

    #[test]
    fn every_emulation_survives_f_silenced_servers() {
        for kind in EmulationKind::ALL {
            run_under(kind, SilenceServers::highest(4, 1));
        }
    }

    #[test]
    fn cover_writes_leaves_registers_covered_on_the_space_optimal_layout() {
        let pending = run_under(EmulationKind::SpaceOptimal, CoverWrites::highest(4, 1));
        assert!(
            pending > 0,
            "the blocked writes must still be pending (covering) at quiescence"
        );
    }

    #[test]
    fn replaying_a_recorded_decision_stream_reproduces_the_run() {
        let params = Params::new(2, 1, 4).unwrap();
        let emulation = EmulationKind::SpaceOptimal.build(params);

        // Record a run under an arbitrary seeded scheduler.
        let mut sim = emulation.build_simulation();
        sim.enable_decision_trace();
        let writer = sim.register_client(emulation.writer_protocol(0));
        let reader = sim.register_client(emulation.reader_protocol());
        let mut sched = AdversarialScheduler::new(99, Box::new(SilenceServers::highest(4, 0)));
        let w = sim.invoke(writer, HighOp::Write(3)).unwrap();
        sched.run_until_complete(&mut sim, w, 50_000).unwrap();
        let r = sim.invoke(reader, HighOp::Read).unwrap();
        sched.run_until_complete(&mut sim, r, 50_000).unwrap();
        let decisions: Vec<u32> = sim.decision_trace().iter().map(|d| d.choice).collect();
        let recorded: Vec<_> = sim.history().events().copied().collect();

        // Replay it through a scheduler with a *different* seed: the decision
        // stream alone must pin the interleaving.
        let mut replay_sim = emulation.build_simulation();
        let writer = replay_sim.register_client(emulation.writer_protocol(0));
        let reader = replay_sim.register_client(emulation.reader_protocol());
        let mut replayer =
            AdversarialScheduler::new(12345, Box::new(ReplayStrategy::new(decisions)));
        let w = replay_sim.invoke(writer, HighOp::Write(3)).unwrap();
        replayer
            .run_until_complete(&mut replay_sim, w, 50_000)
            .unwrap();
        let r = replay_sim.invoke(reader, HighOp::Read).unwrap();
        replayer
            .run_until_complete(&mut replay_sim, r, 50_000)
            .unwrap();

        let replayed: Vec<_> = replay_sim.history().events().copied().collect();
        assert_eq!(recorded, replayed);
    }

    /// Runs a one-write-one-read workload under a replay scheduler and
    /// returns the full event history.
    fn history_under_replay(decisions: Vec<u32>, tail_seed: u64) -> Vec<regemu_fpsm::Event> {
        let params = Params::new(2, 1, 4).unwrap();
        let emulation = EmulationKind::SpaceOptimal.build(params);
        let mut sim = emulation.build_simulation();
        let writer = sim.register_client(emulation.writer_protocol(0));
        let reader = sim.register_client(emulation.reader_protocol());
        let mut sched =
            AdversarialScheduler::new(tail_seed, Box::new(ReplayStrategy::new(decisions)));
        let w = sim.invoke(writer, HighOp::Write(3)).unwrap();
        sched.run_until_complete(&mut sim, w, 50_000).unwrap();
        let r = sim.invoke(reader, HighOp::Read).unwrap();
        sched.run_until_complete(&mut sim, r, 50_000).unwrap();
        sim.history().events().copied().collect()
    }

    #[test]
    fn a_truncated_stream_falls_back_to_a_deterministic_seeded_tail() {
        // Record a full run to get a realistic decision stream.
        let params = Params::new(2, 1, 4).unwrap();
        let emulation = EmulationKind::SpaceOptimal.build(params);
        let mut sim = emulation.build_simulation();
        sim.enable_decision_trace();
        let writer = sim.register_client(emulation.writer_protocol(0));
        let reader = sim.register_client(emulation.reader_protocol());
        let mut sched = AdversarialScheduler::new(99, Box::new(SilenceServers::highest(4, 0)));
        let w = sim.invoke(writer, HighOp::Write(3)).unwrap();
        sched.run_until_complete(&mut sim, w, 50_000).unwrap();
        let r = sim.invoke(reader, HighOp::Read).unwrap();
        sched.run_until_complete(&mut sim, r, 50_000).unwrap();
        let decisions: Vec<u32> = sim.decision_trace().iter().map(|d| d.choice).collect();
        assert!(decisions.len() >= 4, "need a non-trivial stream");

        // Property: at EVERY truncation point, (prefix, tail seed) is a pure
        // function — two runs are byte-identical — and a different tail seed
        // still completes (the fallback is fair, not wedged).
        for cut in 0..=decisions.len() {
            let prefix: Vec<u32> = decisions[..cut].to_vec();
            let a = history_under_replay(prefix.clone(), 7);
            let b = history_under_replay(prefix.clone(), 7);
            assert_eq!(a, b, "tail not deterministic at cut {cut}");
            let _ = history_under_replay(prefix, 8);
        }
        // The empty prefix with different seeds explores differently (the
        // tail really is seeded, not a fixed order).
        let s7 = history_under_replay(Vec::new(), 7);
        let s8 = history_under_replay(Vec::new(), 8);
        assert!(
            s7 != s8 || s7 == history_under_replay(Vec::new(), 7),
            "seeded tails must at least be self-consistent"
        );
    }

    #[test]
    fn arbitrary_rank_streams_never_index_out_of_bounds() {
        // Ranks are reduced modulo the candidate count, so ANY u32 stream is
        // a valid schedule — including the boundary ranks a mutator loves.
        let hostile: Vec<Vec<u32>> = vec![
            vec![u32::MAX; 64],
            vec![0; 64],
            (0..64)
                .map(|i| if i % 2 == 0 { 0 } else { u32::MAX })
                .collect(),
            (0..64u32).map(|i| i.wrapping_mul(0x9E37_79B9)).collect(),
            vec![1, 2, 3, u32::MAX - 1, u32::MAX, 0, 7, 11],
        ];
        for stream in hostile {
            // Completes without panicking; determinism still holds.
            let a = history_under_replay(stream.clone(), 5);
            let b = history_under_replay(stream, 5);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn silenced_set_construction() {
        let s = SilenceServers::highest(5, 2);
        let expect: BTreeSet<ServerId> = [ServerId::new(3), ServerId::new(4)].into();
        assert_eq!(s.servers(), &expect);
        let c = CoverWrites::highest(3, 0);
        assert!(c.servers().is_empty());
    }
}
